(** Incremental view maintenance: keep every derived relation of a
    program's fixpoint up to date under transactions of fact insertions
    and deletions, without recomputing from scratch.

    Each dependency unit (strongly connected component of the predicate
    dependency graph, repaired callees-first — a refinement of the
    stratification, so negation is always over fully-repaired
    predicates) is maintained by:

    - {e counting}, for non-recursive predicates: exact per-tuple
      support counts (number of rule-body valuations deriving the
      tuple, plus one if externally asserted), maintained by a two-pass
      delta-rule discipline that enumerates every lost and gained
      valuation exactly once;
    - {e DRed} (delete-and-rederive), for recursive units:
      overdeletion, rederivation of tuples with surviving alternative
      proofs, then a semi-naive insertion fixpoint.

    All three relation versions a delta rule needs ("old", "mid",
    "new") are expressed as unions of stamp-range views over the single
    stored relation plus the transaction's deleted-tuple relations —
    see {!Engine.Relation} for the deletion discipline. *)

open Datalog

type t

type op = Insert of Atom.t | Delete of Atom.t

exception Budget_exhausted
(** Raised when [max_facts] is exceeded (the materialization, or the
    insertions of one transaction).  After a mid-transaction abort the
    state is unspecified; rebuild with {!create}. *)

val create : ?max_facts:int -> Program.t -> edb:Engine.Database.t -> t
(** Materialize the program's fixpoint over a copy of [edb] (the input
    database is not modified).  Tuples of derived predicates already
    present in [edb] — e.g. magic seed facts — are recorded as
    {e externally asserted}: they carry one unit of support that no rule
    accounts for, and persist until retracted.
    @raise Invalid_argument if the program is not stratifiable. *)

type delta = {
  d_pred : Symbol.t;  (** the touched relation (base or derived) *)
  d_inserted : int;  (** net tuples inserted this transaction *)
  d_deleted : int;  (** net tuples deleted this transaction *)
  d_added : Engine.Tuple.t list option;
      (** the inserted tuples themselves, or [None] when there are more
          than an internal cap (summarizing must stay O(delta)); a
          caller needing the rows then falls back to recomputation *)
}
(** One touched relation's net effect in a transaction's change
    summary.  A relation with both [d_inserted = 0] and [d_deleted = 0]
    is never reported. *)

type summary = delta list
(** A transaction's change summary, sorted by predicate.  The effect is
    net: a tuple overdeleted and rederived by DRed lands below the
    watermark and appears in neither count. *)

val touched : summary -> Symbol.Set.t
val has_deletions : summary -> bool

val apply : ?max_facts:int -> t -> op list -> Engine.Stats.t
(** Apply one transaction: all ops take effect atomically (a tuple
    deleted and re-inserted in the same transaction does not churn),
    then every derived relation is repaired.  Ops on base predicates
    update the EDB; ops on derived predicates assert or retract
    external support.  Returns the transaction's maintenance statistics
    ([overdeleted], [rederived], [delta_firings], [probes]).
    @raise Invalid_argument on a non-ground atom. *)

val apply_delta : ?max_facts:int -> t -> op list -> Engine.Stats.t * summary
(** {!apply}, also returning the transaction's change summary — which
    relations changed and by how much.  This is the information partial
    cache invalidation feeds on; building it costs O(delta). *)

val db : t -> Engine.Database.t
(** The maintained database (EDB and all derived relations).  Treat as
    read-only: external mutation invalidates the maintained state. *)

type image = {
  im_db : Engine.Database.t;
      (** the maintained database; shared, not copied — the snapshot
          writer reads it under the caller's lock *)
  im_counts : (Symbol.t * (Engine.Tuple.t * int) list) list;
      (** support counts of the counting-maintained predicates, sorted
          by predicate then tuple *)
  im_external : (Symbol.t * Engine.Tuple.t list) list;
      (** externally asserted tuples (magic seeds), sorted likewise *)
}
(** Everything of the maintained state that is not recomputable in O(1)
    from the program: the serialization boundary for {!module:Persist}. *)

val image : t -> image
(** Export the maintained state.  Deterministic ordering: the same state
    always yields the same image, so snapshots are byte-stable. *)

val of_image : Program.t -> image -> t
(** Rebuild a maintained state from an {!image} without re-evaluating:
    units are recompiled from the program (cheap, symbolic) and the
    database, counts and external support are adopted as-is — the image
    must come from {!image} of a state maintained for the same program.
    Takes ownership of [im_db].
    @raise Invalid_argument if the program is not stratifiable. *)

val answers : t -> Atom.t -> Engine.Tuple.t list
(** The current tuples matching a query atom, sorted. *)

val support_count : t -> Symbol.t -> Engine.Tuple.t -> int option
(** [Some n] for a counting-maintained predicate ([n = 0] if absent);
    [None] for recursive (DRed) predicates, which carry no counts. *)

val kind_of : t -> Symbol.t -> [ `Counting | `DRed ] option
