(* Persistent query sessions over a maintained database.

   A session fixes one program and one evaluation strategy, then serves
   interleaved updates and queries.  With a magic strategy the session
   holds the rewritten program materialized once, with the query's seed
   facts recorded as external support; a later query that adorns to the
   same rewritten program is answered by inserting its seeds as a
   transaction — incremental maintenance then grows the magic cone by
   exactly the newly relevant facts (the dynamic counterpart of the
   paper's per-query rewriting). *)

open Datalog
module C = Magic_core

type strategy = Original | GMS | GSMS | Auto

exception Incompatible_query of string

type t = {
  strategy : strategy;
  options : C.Rewrite.options;
  program : Program.t;  (* the original, un-rewritten program *)
  maintain : Maintain.t;
  mutable rw : C.Rewritten.t option;  (* rewritten strategies only *)
  mutable query : Atom.t;
}

let strategy_of_string = function
  | "original" -> Some Original
  | "gms" -> Some GMS
  | "gsms" -> Some GSMS
  | "auto" -> Some Auto
  | _ -> None

let strategy_to_string = function
  | Original -> "original"
  | GMS -> "gms"
  | GSMS -> "gsms"
  | Auto -> "auto"

let rewriting = function
  | GMS -> C.Rewrite.GMS
  | GSMS -> C.Rewrite.GSMS
  | Original | Auto -> invalid_arg "Session.rewriting"

let rec create ?(strategy = Original) ?(options = C.Rewrite.default_options) ?max_facts
    program query ~edb =
  match strategy with
  | Auto ->
    (* cost-based pick among the strategies a session can maintain *)
    let resolved, _choice = Analysis.choose_session_strategy ~db:edb program query in
    let strategy = match resolved with `GMS -> GMS | `GSMS -> GSMS in
    create ~strategy ~options ?max_facts program query ~edb
  | Original ->
    {
      strategy;
      options;
      program;
      maintain = Maintain.create ?max_facts program ~edb;
      rw = None;
      query;
    }
  | GMS | GSMS ->
    let rw = C.Rewrite.rewrite ~options (rewriting strategy) program query in
    (* the seeds enter the materialization as external facts of the
       magic predicates, exactly as later queries' seeds will *)
    let edb' = Engine.Database.copy edb in
    List.iter
      (fun seed -> ignore (Engine.Database.add_fact edb' seed))
      rw.C.Rewritten.seeds;
    {
      strategy;
      options;
      program;
      maintain = Maintain.create ?max_facts rw.C.Rewritten.program ~edb:edb';
      rw = Some rw;
      query;
    }

let update ?max_facts t ops = Maintain.apply ?max_facts t.maintain ops

let update_delta ?max_facts t ops = Maintain.apply_delta ?max_facts t.maintain ops

let answers t =
  match t.rw with
  | None -> Maintain.answers t.maintain t.query
  | Some rw ->
    C.Rewritten.answers rw
      {
        Engine.Eval.db = Maintain.db t.maintain;
        stats = Engine.Stats.create ();
        diverged = false;
      }

let same_program p1 p2 = List.equal Rule.equal (Program.rules p1) (Program.rules p2)

let query_delta ?max_facts t q =
  match t.strategy with
  | Original | Auto ->
    t.query <- q;
    (answers t, Engine.Stats.create (), [])
  | GMS | GSMS ->
    let rw = Option.get t.rw in
    let rw' = C.Rewrite.rewrite ~options:t.options (rewriting t.strategy) t.program q in
    if not (same_program rw.C.Rewritten.program rw'.C.Rewritten.program) then
      raise
        (Incompatible_query
           (Fmt.str
              "query %a rewrites to a different program than the session's (the \
               binding pattern differs); start a new session"
              Atom.pp q));
    (* dynamic magic sets: install the new query's seeds and let
       maintenance extend the magic cone incrementally *)
    let stats, summary =
      Maintain.apply_delta ?max_facts t.maintain
        (List.map (fun s -> Maintain.Insert s) rw'.C.Rewritten.seeds)
    in
    t.rw <- Some rw';
    t.query <- q;
    (answers t, stats, summary)

let query ?max_facts t q =
  let answers, stats, _summary = query_delta ?max_facts t q in
  (answers, stats)

(* ------------------------------------------------------------------ *)
(* Persistence images                                                   *)
(* ------------------------------------------------------------------ *)

type image = {
  i_strategy : strategy;  (* resolved: never Auto *)
  i_query : Atom.t;
  i_maintain : Maintain.image;
}

let image t = { i_strategy = t.strategy; i_query = t.query; i_maintain = Maintain.image t.maintain }

let of_image ?(options = C.Rewrite.default_options) program im =
  match im.i_strategy with
  | Auto -> invalid_arg "Session.of_image: Auto is resolved at create time"
  | Original ->
    {
      strategy = Original;
      options;
      program;
      maintain = Maintain.of_image program im.i_maintain;
      rw = None;
      query = im.i_query;
    }
  | (GMS | GSMS) as strategy ->
    (* the rewrite is deterministic in (program, query, options), so it
       is recomputed symbolically instead of being serialized; the
       maintained image is over the rewritten program *)
    let rw = C.Rewrite.rewrite ~options (rewriting strategy) program im.i_query in
    {
      strategy;
      options;
      program;
      maintain = Maintain.of_image rw.C.Rewritten.program im.i_maintain;
      rw = Some rw;
      query = im.i_query;
    }

let db t = Maintain.db t.maintain
let current_query t = t.query
let strategy t = t.strategy
let rewritten t = t.rw
let options t = t.options
let program t = t.program
