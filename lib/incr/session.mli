(** Persistent query sessions: one program, one strategy, a maintained
    database, and interleaved updates and queries.

    With [Original] the whole fixpoint is materialized and maintained.
    With [GMS]/[GSMS] the session materializes the rewritten program of
    the initial query (seed facts recorded as external support); EDB
    updates repair the magic and supplementary relations incrementally,
    and a later query whose adornment yields the {e same} rewritten
    program is served by inserting its seeds as a transaction — the
    magic cone grows by exactly the newly relevant part.  The counting
    strategies are excluded: their index arguments make relations
    query-instance-specific, so there is nothing stable to maintain. *)

open Datalog
module C = Magic_core

type strategy = Original | GMS | GSMS | Auto

type t

exception Incompatible_query of string
(** A new query's rewritten program differs from the session's (its
    binding pattern adorns differently); a new session is needed. *)

val strategy_of_string : string -> strategy option
val strategy_to_string : strategy -> string

val create :
  ?strategy:strategy ->
  ?options:C.Rewrite.options ->
  ?max_facts:int ->
  Program.t ->
  Atom.t ->
  edb:Engine.Database.t ->
  t
(** Materialize the program (rewritten for the given query under a
    magic strategy) over a copy of [edb].  Default strategy is
    [Original].  [Auto] asks {!Analysis.choose_session_strategy} to pick
    between [GMS] and [GSMS] from the extensional statistics; the
    session then behaves exactly as if created with the resolved
    strategy (see {!strategy}). *)

val update : ?max_facts:int -> t -> Maintain.op list -> Engine.Stats.t
(** Apply one transaction of EDB insertions/deletions and repair all
    derived (including magic and supplementary) relations. *)

val update_delta :
  ?max_facts:int -> t -> Maintain.op list -> Engine.Stats.t * Maintain.summary
(** {!update}, also surfacing the transaction's change summary (which
    relations changed, by how much, and the inserted tuples) for
    consumers that invalidate or repair derived views selectively. *)

val query : ?max_facts:int -> t -> Atom.t -> Engine.Tuple.t list * Engine.Stats.t
(** Make the atom the session's current query and return its answers
    with the maintenance statistics incurred (seed installation under a
    magic strategy; zero-cost under [Original]).
    @raise Incompatible_query under a magic strategy when the query
    adorns to a different rewritten program. *)

val query_delta :
  ?max_facts:int ->
  t ->
  Atom.t ->
  Engine.Tuple.t list * Engine.Stats.t * Maintain.summary
(** {!query}, also surfacing the change summary of the seed-install
    transaction (empty under [Original], which installs nothing). *)

val answers : t -> Engine.Tuple.t list
(** Answers of the current query against the maintained state; under a
    magic strategy, projected through the rewriting exactly as
    {!C.Rewritten.answers} does. *)

val db : t -> Engine.Database.t
val current_query : t -> Atom.t

val strategy : t -> strategy
(** The session's strategy; [Auto] is resolved at {!create} time, so
    this is never [Auto]. *)

val rewritten : t -> C.Rewritten.t option
(** The rewritten program the session maintains; [None] under
    [Original].  The serving layer uses it to decide, without touching
    the session, whether a candidate query adorns to the same program
    and whether its seeds are already installed. *)

val options : t -> C.Rewrite.options
val program : t -> Program.t
(** The original, un-rewritten program the session was created over. *)

type image = {
  i_strategy : strategy;  (** resolved at create time; never [Auto] *)
  i_query : Atom.t;  (** the current query *)
  i_maintain : Maintain.image;
      (** the maintained state — over the {e rewritten} program under a
          magic strategy *)
}
(** The serializable state of a session: what {!module:Persist} writes
    to a snapshot.  The rewritten program itself is not part of the
    image — it is deterministic in (program, query, options) and is
    recomputed symbolically on restore. *)

val image : t -> image

val of_image : ?options:C.Rewrite.options -> Program.t -> image -> t
(** Rebuild a session from an {!image} of a session over the same
    program (and the same [options] — they shape the rewrite and are not
    serialized).  No evaluation runs: cost is unit compilation plus, for
    magic strategies, one symbolic rewrite.
    @raise Invalid_argument if [i_strategy] is [Auto]. *)
