(** Update scripts for {!Session}: one item per line.

    {v
      + parent(tom, amy).     assert a ground fact
      - parent(tom, amy).     retract a ground fact
      ? ancestor(tom, X).     run a query against the maintained state
    v}

    Blank lines and [%]-comments are ignored.  Consecutive [+]/[-]
    items are conventionally batched into one transaction by the
    consumer (the CLI applies everything up to the next query as a
    single transaction). *)

open Datalog

type item = Assert of Atom.t | Retract of Atom.t | Query of Atom.t

exception Error of string
(** Parse error, with the 1-based line number. *)

val parse : string -> item list
