(** Update scripts for {!Session}: one item per line.

    {v
      + parent(tom, amy).     assert a ground fact
      - parent(tom, amy).     retract a ground fact
      ? ancestor(tom, X).     run a query against the maintained state
    v}

    Blank lines and [%]-comments are ignored.  Consecutive [+]/[-]
    items are conventionally batched into one transaction by the
    consumer (the CLI applies everything up to the next query as a
    single transaction). *)

open Datalog

type item = Assert of Atom.t | Retract of Atom.t | Query of Atom.t

type error = { message : string; span : Loc.t }
(** A located script error: the span points at the offending line (or
    the offending part of it) in the original source text, so the CLI
    can render a caret-style diagnostic instead of a bare line number. *)

val parse_spanned : string -> (item list, error) result
(** Parse a whole script.  Truncated input (a final line missing its
    ['.'], an item marker with nothing after it) and malformed items
    are reported as located errors, never as exceptions. *)

exception Error of string
(** Parse error with the 1-based line number, raised by {!parse}. *)

val parse : string -> item list
(** {!parse_spanned} for callers that prefer the exception;
    @raise Error with a ["line %d: ..."] message. *)
