open Datalog

type item = Assert of Atom.t | Retract of Atom.t | Query of Atom.t

exception Error of string

let parse_line lineno line =
  let line =
    match String.index_opt line '%' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else begin
    let err fmt = Fmt.kstr (fun m -> raise (Error (Fmt.str "line %d: %s" lineno m))) fmt in
    let n = String.length line in
    if n < 2 then err "expected '+fact.', '-fact.' or '? query.'";
    if line.[n - 1] <> '.' then err "missing final '.'";
    let body = String.trim (String.sub line 1 (n - 2)) in
    let atom () =
      match Parser.parse_atom body with
      | a -> a
      | exception Parser.Error m -> err "%s" m
    in
    let ground_atom () =
      let a = atom () in
      if not (Atom.is_ground a) then err "update %a is not ground" Atom.pp a;
      a
    in
    match line.[0] with
    | '+' -> Some (Assert (ground_atom ()))
    | '-' -> Some (Retract (ground_atom ()))
    | '?' -> Some (Query (atom ()))
    | c -> err "expected '+', '-' or '?', got %c" c
  end

let parse src =
  let items = ref [] in
  List.iteri
    (fun i line ->
      match parse_line (i + 1) line with
      | Some item -> items := item :: !items
      | None -> ())
    (String.split_on_char '\n' src);
  List.rev !items
