open Datalog

type item = Assert of Atom.t | Retract of Atom.t | Query of Atom.t
type error = { message : string; span : Loc.t }

exception Error of string

(* [lineno] is 1-based; [offset] is the 0-based character offset of the
   line's first character in the whole source *)
let parse_line_spanned ~lineno ~offset line =
  let content =
    match String.index_opt line '%' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  (* trimmed extent [i0, i1) of the content within the line *)
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let i1 = ref (String.length content) in
  while !i1 > 0 && is_ws content.[!i1 - 1] do
    decr i1
  done;
  let i0 = ref 0 in
  while !i0 < !i1 && is_ws content.[!i0] do
    incr i0
  done;
  if !i0 >= !i1 then Ok None
  else begin
    let span_of i j =
      Loc.span
        { Loc.line = lineno; col = i + 1; offset = offset + i }
        { Loc.line = lineno; col = j + 1; offset = offset + j }
    in
    let line_span = span_of !i0 !i1 in
    let err span fmt =
      Fmt.kstr (fun message -> Stdlib.Error { message; span }) fmt
    in
    let n = !i1 - !i0 in
    let marker = content.[!i0] in
    if marker <> '+' && marker <> '-' && marker <> '?' then
      err line_span "expected '+', '-' or '?', got %c" marker
    else if n < 2 || content.[!i1 - 1] <> '.' then
      err line_span "truncated item: expected '%cfact.' with a final '.'" marker
    else begin
      let body = String.trim (String.sub content (!i0 + 1) (n - 2)) in
      let body_span = span_of (!i0 + 1) (!i1 - 1) in
      if body = "" then err line_span "empty item after '%c'" marker
      else begin
        match Parser.parse_atom body with
        | exception Parser.Error m -> err body_span "%s" m
        | a -> (
          match marker with
          | '?' -> Ok (Some (Query a))
          | '+' | '-' ->
            if not (Atom.is_ground a) then
              err body_span "update %a is not ground" Atom.pp a
            else Ok (Some (if marker = '+' then Assert a else Retract a))
          | _ -> assert false)
      end
    end
  end

let parse_spanned src =
  let rec go acc lineno offset = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line_spanned ~lineno ~offset line with
      | Ok None -> go acc (lineno + 1) (offset + String.length line + 1) rest
      | Ok (Some item) ->
        go (item :: acc) (lineno + 1) (offset + String.length line + 1) rest
      | Stdlib.Error _ as e -> e)
  in
  go [] 1 0 (String.split_on_char '\n' src)

let parse src =
  match parse_spanned src with
  | Ok items -> items
  | Stdlib.Error { message; span } ->
    raise (Error (Fmt.str "line %d: %s" span.Loc.start.Loc.line message))
