(* Cost-based strategy selection: estimate every candidate rewrite with
   Pass_card over its rewritten program (magic seeds installed as
   facts), exclude the ones the Section 10 report or the data shape
   prove unsafe, and rank the rest by estimated work. *)

open Datalog
module C = Magic_core

type verdict = Viable | Inapplicable of string | Excluded of string

type estimate = {
  name : string;
  method_ : C.Rewrite.method_;
  verdict : verdict;
  est_magic : float;
  est_facts : float;
  est_probes : float;
  est_rounds : float;
  widened : string list;
  score : float;
}

type t = {
  winner : estimate;
  ranked : estimate list;
  universe : float;
  measured : bool;
  edb_facts : int;
  rounds_bound : float;
  diagnostics : Diagnostic.t list;
}

let fact_weight = 4.

(* Constant runtime weight of each strategy's machinery.  [est_probes]
   and [est_facts] count operations, but not every operation costs the
   same: a counting derivation carries index arithmetic on every tuple
   and reconstructs answers through the index-decrement rules, which
   the plan engine executes 2-3x slower than a plain magic probe of
   equal cardinality (Table OPT calibrates this).  The semijoin
   variants shed join probes but keep the index machinery. *)
let runtime_weight = function
  | "gc" | "gsc" -> 2.5
  | "gc-sj" | "gsc-sj" -> 2.
  | _ -> 1.

(* tie-break order: cheaper machinery first at equal scores.  The
   [-chain] and [-bound] variants vary the sip {e collection}: chain
   passes only adjacent-literal bindings, bound passes only the head's
   bound variables — both can beat the full sip when intermediate
   bindings blow up the supplementary relations, and lose badly when
   dropping a binding unleashes an unrestricted sub-join.  They sit
   after their full-sip counterparts so ties keep the historical
   pick. *)
let candidate_names =
  [
    "seminaive";
    "gms";
    "gsms";
    "gms-chain";
    "gsms-chain";
    "gms-bound";
    "gsms-bound";
    "gc";
    "gc-sj";
    "gsc";
    "gsc-sj";
  ]

let candidates =
  List.filter_map
    (fun n ->
      Option.map (fun m -> (n, m)) (List.assoc_opt n C.Rewrite.methods))
    candidate_names

let is_counting = function
  | C.Rewrite.Rewritten_bottom_up ((C.Rewrite.GC | C.Rewrite.GSC), _) -> true
  | _ -> false

(* generated guard predicates of a rewritten program: the recursion
   carriers whose growth the descent analysis has to model *)
let is_guard naming pred =
  match C.Naming.role naming pred with
  | Some
      ( C.Naming.Magic _ | C.Naming.Label _ | C.Naming.Supp _ | C.Naming.Cnt _
      | C.Naming.Supcnt _ ) ->
    true
  | _ -> false

let is_magic naming pred =
  match C.Naming.role naming pred with Some (C.Naming.Magic _) -> true | _ -> false

(* ---- descent shape: how the guards walk the extensional data ----

   For every rule defining a guard predicate, scan the body left to
   right with the set of already-bound variables (guard literals bind
   their variables; everything binds after being processed).  A binary
   extensional literal with one side bound is a descent step: the
   guards walk its facts in that orientation.  Anything the model
   cannot express (compound arguments, wider extensional joins with
   several unbound variables) makes the shape opaque. *)
let descent_shape (rw : C.Rewritten.t) db =
  let derived = Program.derived rw.C.Rewritten.program in
  let orientations : (Symbol.t * bool, unit) Hashtbl.t = Hashtbl.create 8 in
  let opaque = ref false in
  List.iter
    (fun (r : Rule.t) ->
      if is_guard rw.C.Rewritten.naming r.Rule.head.Atom.pred then begin
        let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
        let add_vars a =
          List.iter (fun v -> Hashtbl.replace bound v ()) (Atom.vars a)
        in
        List.iter
          (fun (a : Atom.t) ->
            let sym = Atom.symbol a in
            if
              (not (Atom.is_builtin a))
              && not (Symbol.Set.mem sym derived)
            then begin
              let var_side = function Term.Var v -> Some v | _ -> None in
              match a.Atom.args with
              | [ x; y ] -> (
                match (var_side x, var_side y) with
                | Some vx, Some vy -> (
                  match (Hashtbl.mem bound vx, Hashtbl.mem bound vy) with
                  | true, false -> Hashtbl.replace orientations (sym, true) ()
                  | false, true -> Hashtbl.replace orientations (sym, false) ()
                  | _ -> ())
                | _ ->
                  if not (Atom.is_ground a) then opaque := true)
              | args ->
                let unbound =
                  List.concat_map Term.vars args
                  |> List.sort_uniq String.compare
                  |> List.filter (fun v -> not (Hashtbl.mem bound v))
                in
                if List.length unbound > 1 then opaque := true
            end;
            add_vars a)
          (Rule.body_atoms r)
      end)
    (Program.rules rw.C.Rewritten.program);
  let edges =
    Hashtbl.fold
      (fun (sym, forward) () acc ->
        List.fold_left
          (fun acc (f : Atom.t) ->
            match f.Atom.args with
            | [ a; b ] -> (if forward then (a, b) else (b, a)) :: acc
            | _ -> acc)
          acc
          (Engine.Database.facts db sym))
      orientations []
  in
  let roots =
    List.concat_map
      (fun (s : Atom.t) -> List.filter Term.is_ground s.Atom.args)
      rw.C.Rewritten.seeds
  in
  (Pass_card.graph_shape ~edges ~roots, !opaque)

(* depth at which the numeric counting indices (Section 6: K*m+i, H*t+j
   per level) overflow a native int, with margin *)
let numeric_depth_limit (rw : C.Rewritten.t) =
  let m = max 2 (C.Indexing.rule_count rw.C.Rewritten.adorned) in
  let t = max 2 (C.Indexing.position_base rw.C.Rewritten.adorned) in
  Float.of_int 60 /. (Float.log (Float.of_int (max m t)) /. Float.log 2.)

let counting_exclusion (report : C.Safety.report) rw shape_opt =
  if report.C.Safety.counting_statically_diverges then
    Some
      "the bound-argument graph is cyclic: counting diverges regardless of \
       the data (Thm 10.3)"
  else if report.C.Safety.counting_safe then None
  else
    match shape_opt with
    | None -> Some "cannot bound the counting indices without data statistics"
    | Some ((_ : Pass_card.shape), true) ->
      Some "cannot trace the guard descent through unmodelled joins"
    | Some (s, false) ->
      if not s.Pass_card.acyclic then
        Some
          "the data reachable from the seeds is cyclic: numeric counting \
           indices would grow without bound"
      else begin
        let limit = numeric_depth_limit rw in
        if s.Pass_card.longest > limit then
          Some
            (Fmt.str
               "derivation depth %.0f overflows the numeric counting indices \
                (limit ~%.0f for this program)"
               s.Pass_card.longest limit)
        else if s.Pass_card.saturated then
          Some
            "derivation paths multiply beyond the saturation bound: the \
             counting relations would explode"
        else None
      end

let seminaive_exclusion program =
  if
    List.exists
      (fun (r : Rule.t) -> Rule.unrestricted_head_vars r <> [])
      (Program.rules program)
  then
    Some
      "some rule's head variables are not bound by its positive body: direct \
       bottom-up evaluation is unsafe"
  else None

let excluded name method_ why =
  {
    name;
    method_;
    verdict = Excluded why;
    est_magic = 0.;
    est_facts = 0.;
    est_probes = 0.;
    est_rounds = 0.;
    widened = [];
    score = Float.infinity;
  }

let inapplicable name method_ why =
  { (excluded name method_ why) with verdict = Inapplicable why }

let viable name method_ ~est_magic card =
  let est_facts = Pass_card.total_derived card in
  let est_probes = Pass_card.est_probes card in
  {
    name;
    method_;
    verdict = Viable;
    est_magic;
    est_facts;
    est_probes;
    est_rounds = Pass_card.est_rounds card;
    widened =
      List.map (fun (s : Symbol.t) -> s.Symbol.name) (Pass_card.widened card);
    score = runtime_weight name *. (est_probes +. (fact_weight *. est_facts));
  }

(* round horizon shared by every candidate: the longest path of the
   union graph of the binary extensional relations (plus slack), or the
   universe when the data is cyclic or unmeasured *)
let rounds_horizon ?db ~universe program =
  match db with
  | None -> universe
  | Some db ->
    let edges =
      Symbol.Set.fold
        (fun (sym : Symbol.t) acc ->
          if sym.Symbol.arity = 2 then
            List.fold_left
              (fun acc (f : Atom.t) ->
                match f.Atom.args with [ a; b ] -> (a, b) :: acc | _ -> acc)
              acc
              (Engine.Database.facts db sym)
          else acc)
        (Program.base program) []
    in
    if edges = [] then universe
    else
      let s = Pass_card.graph_shape ~edges ~roots:[] in
      if s.Pass_card.acyclic then s.Pass_card.longest +. 2. else universe

(* per-column distinct caps for a counting candidate: index columns
   (those receiving arithmetic index terms in heads or seeds) range
   over derivation paths, not data constants *)
let counting_caps (rw : C.Rewritten.t) ~universe ~idx_cap =
  let rec has_index_term (t : Term.t) =
    match t with
    | Term.Int _ | Term.Add _ | Term.Mul _ | Term.Div _ -> true
    | Term.Var _ | Term.Sym _ -> false
    | Term.App (_, ts) -> List.exists has_index_term ts
  in
  let flags : (Symbol.t, bool array) Hashtbl.t = Hashtbl.create 16 in
  let mark (a : Atom.t) =
    let sym = Atom.symbol a in
    let arr =
      match Hashtbl.find_opt flags sym with
      | Some arr -> arr
      | None ->
        let arr = Array.make (max sym.Symbol.arity 0) false in
        Hashtbl.replace flags sym arr;
        arr
    in
    List.iteri
      (fun i arg ->
        if i < Array.length arr && has_index_term arg then arr.(i) <- true)
      a.Atom.args
  in
  List.iter (fun (r : Rule.t) -> mark r.Rule.head) (Program.rules rw.C.Rewritten.program);
  List.iter mark rw.C.Rewritten.seeds;
  fun sym ->
    match Hashtbl.find_opt flags sym with
    | Some arr when Array.exists Fun.id arr ->
      Some (Array.map (fun idx -> if idx then idx_cap else universe) arr)
    | _ -> None

let score_candidate ~db ~measured ~universe ~rounds_bound program query
    (name, method_) =
  match method_ with
  | C.Rewrite.Original `Seminaive -> (
    match seminaive_exclusion program with
    | Some why -> excluded name method_ why
    | None ->
      let card =
        Pass_card.analyze ?db ~defaults:(not measured) ~universe
          ~rounds_bound program
      in
      viable name method_ ~est_magic:0. card)
  | C.Rewrite.Rewritten_bottom_up (rewriting, options) -> (
    match C.Rewrite.rewrite ~options rewriting program query with
    | exception Invalid_argument msg -> inapplicable name method_ msg
    | exception exn -> inapplicable name method_ (Printexc.to_string exn)
    | rw -> (
      let report = C.Safety.analyze rw.C.Rewritten.adorned in
      if not report.C.Safety.magic_safe then
        excluded name method_
          "the binding graph has a non-positive cycle: the rewriting may not \
           terminate (Section 10)"
      else
        let shape = Option.map (fun db -> descent_shape rw db) db in
        match
          if is_counting method_ then counting_exclusion report rw shape
          else None
        with
        | Some why -> excluded name method_ why
        | None ->
          let db' =
            match db with
            | Some db -> Engine.Database.copy db
            | None -> Engine.Database.create ()
          in
          List.iter
            (fun (s : Atom.t) ->
              if Atom.is_ground s then ignore (Engine.Database.add_fact db' s))
            rw.C.Rewritten.seeds;
          let index_caps =
            match shape with
            | Some (s, _) when s.Pass_card.acyclic && not s.Pass_card.saturated
              ->
              counting_caps rw ~universe
                ~idx_cap:(Float.max 1. s.Pass_card.total_paths)
            | _ when is_counting method_ ->
              counting_caps rw ~universe ~idx_cap:universe
            | _ -> fun _ -> None
          in
          (* Cone cap: every value a magic predicate can hold is reached
             from the seed constants by descent steps through the
             extensional data, so the measured reachable set bounds the
             magic columns far tighter than the constant universe.
             Without it, a seed in the middle of a long chain widens to
             the whole universe and the rewriting looks no better than
             direct evaluation.  The descent graph only tracks binary
             extensional steps, so the cap is sound only when every
             extensional literal of a guard rule is binary or ground. *)
          let cone_caps =
            let derived = Program.derived rw.C.Rewritten.program in
            let binary_descent =
              List.for_all
                (fun (r : Rule.t) ->
                  (not (is_guard rw.C.Rewritten.naming r.Rule.head.Atom.pred))
                  || List.for_all
                       (fun (a : Atom.t) ->
                         Atom.is_builtin a
                         || Symbol.Set.mem (Atom.symbol a) derived
                         (* a guard predicate with no rules (the magic
                            seed of a non-recursive query predicate)
                            holds only root constants: it is not a
                            descent step through the data and must not
                            void the cap *)
                         || is_guard rw.C.Rewritten.naming a.Atom.pred
                         || Atom.is_ground a
                         || List.length a.Atom.args = 2)
                       (Rule.body_atoms r))
                (Program.rules rw.C.Rewritten.program)
            in
            match shape with
            | Some (s, false) when binary_descent && s.Pass_card.reachable >= 1.
              ->
              let cone = Float.min universe s.Pass_card.reachable in
              fun (sym : Symbol.t) ->
                if is_magic rw.C.Rewritten.naming sym.Symbol.name then
                  Some (Array.make (max sym.Symbol.arity 0) cone)
                else None
            | _ -> fun _ -> None
          in
          let col_caps sym =
            match (index_caps sym, cone_caps sym) with
            | None, None -> None
            | (Some _ as c), None | None, (Some _ as c) -> c
            | Some a, Some b ->
              Some
                (Array.mapi
                   (fun i c ->
                     if i < Array.length b then Float.min c b.(i) else c)
                   a)
          in
          let card =
            Pass_card.analyze ~db:db' ~defaults:(not measured) ~universe
              ~col_caps ~rounds_bound rw.C.Rewritten.program
          in
          let est_magic =
            Symbol.Set.fold
              (fun (sym : Symbol.t) acc ->
                if is_magic rw.C.Rewritten.naming sym.Symbol.name then
                  acc +. (Pass_card.stat card sym).Pass_card.card
                else acc)
              (Program.predicates rw.C.Rewritten.program)
              0.
          in
          viable name method_ ~est_magic card))
  | _ -> inapplicable name method_ "not a bottom-up candidate"

(* A counting rewrite stores at least one entry per entry of its magic
   counterpart: the counting relations mirror the magic/supplementary
   ones with index arguments attached, and distinct derivation paths
   multiply entries, never merge them.  The index-column caps can
   nevertheless drive the counting fixpoint's estimate below the
   counterpart's on whole-cone queries, so the fact estimate is floored
   at the counterpart's.  Probes are not floored: the Section 8
   semijoin variants genuinely probe less than magic. *)
let counterpart = function
  | "gc" | "gc-sj" -> Some "gms"
  | "gsc" | "gsc-sj" -> Some "gsms"
  | _ -> None

let floor_at_counterpart estimates =
  List.map
    (fun e ->
      match counterpart e.name with
      | None -> e
      | Some mate -> (
        match
          List.find_opt
            (fun m -> m.name = mate && m.verdict = Viable)
            estimates
        with
        | Some m when e.verdict = Viable && e.est_facts < m.est_facts ->
          let est_facts = m.est_facts in
          {
            e with
            est_facts;
            score =
              runtime_weight e.name
              *. (e.est_probes +. (fact_weight *. est_facts));
          }
        | _ -> e))
    estimates

let rank estimates =
  let arr = List.mapi (fun i e -> (i, e)) estimates in
  List.map snd
    (List.stable_sort
       (fun (i, a) (j, b) ->
         let va = match a.verdict with Viable -> 0 | _ -> 1 in
         let vb = match b.verdict with Viable -> 0 | _ -> 1 in
         if va <> vb then compare va vb
         else if a.score <> b.score then compare a.score b.score
         else compare i j)
       arr)

let choose ?db ?only program query =
  let candidates =
    match only with
    | None -> candidates
    | Some names -> List.filter (fun (n, _) -> List.mem n names) candidates
  in
  let measured =
    match db with Some d -> Engine.Database.total d > 0 | None -> false
  in
  let edb_facts = match db with Some d -> Engine.Database.total d | None -> 0 in
  let universe =
    match db with
    | Some d when measured -> Pass_card.universe_of_db d
    | _ -> 100.
  in
  let rounds_bound = rounds_horizon ?db ~universe program in
  if not (Program.is_derived program (Atom.symbol query)) then begin
    (* extensional query: a single scan answers it, nothing to choose *)
    let e =
      {
        name = "seminaive";
        method_ = C.Rewrite.Original `Seminaive;
        verdict = Viable;
        est_magic = 0.;
        est_facts = 0.;
        est_probes =
          (match db with
          | Some d -> Float.of_int (Engine.Database.cardinal d (Atom.symbol query))
          | None -> 0.);
        est_rounds = 1.;
        widened = [];
        score = 0.;
      }
    in
    {
      winner = e;
      ranked = [ e ];
      universe;
      measured;
      edb_facts;
      rounds_bound;
      diagnostics = [];
    }
  end
  else begin
    let estimates =
      List.map
        (score_candidate ~db ~measured ~universe ~rounds_bound program query)
        candidates
    in
    let ranked = rank (floor_at_counterpart estimates) in
    let winner =
      match List.find_opt (fun e -> e.verdict = Viable) ranked with
      | Some e -> e
      | None -> List.hd ranked
    in
    (* Near-tie resolution.  Within the estimator's error band the
       scores cannot separate direct evaluation from a rewriting (both
       sides' closures are capped by the same column products), so the
       measured cone decides: when the magic set would cover essentially
       the whole constant universe the bindings restrict nothing and the
       rewriting machinery is pure overhead, and when it would not, the
       restriction is real even if the arithmetic can't see it. *)
    let cone_fraction =
      match db with
      | Some d when measured -> (
        try
          let rw = C.Rewrite.rewrite C.Rewrite.GMS program query in
          let shape, opaque = descent_shape rw d in
          if opaque then None
          else Some (shape.Pass_card.reachable /. Float.max 1. universe)
        with _ -> None)
      | _ -> None
    in
    let winner =
      match cone_fraction with
      | None -> winner
      | Some f ->
        let near =
          List.filter
            (fun e -> e.verdict = Viable && e.score <= 1.3 *. winner.score)
            ranked
        in
        let pick =
          if f >= 0.95 then
            List.find_opt (fun e -> e.name = "seminaive") near
          else List.find_opt (fun e -> e.name <> "seminaive") near
        in
        Option.value pick ~default:winner
    in
    let diagnostics =
      (if measured then []
       else
         [
           Diagnostic.warning ~code:"W061"
             "no extensional statistics: strategy estimates use symbolic \
              defaults and may misrank close candidates";
         ])
      @ (match winner.widened with
        | [] -> []
        | syms ->
          [
            Diagnostic.warning ~code:"W060"
              (Fmt.str
                 "recursive cardinality estimates for %s did not stabilize \
                  and were widened; the ranking is coarse"
                 (String.concat ", " syms));
          ])
      @
      if
        winner.name = "seminaive"
        && List.exists (fun e -> e.verdict = Viable && e.name <> "seminaive") ranked
      then
        [
          Diagnostic.warning ~code:"W062"
            "the query's bindings are not expected to restrict the \
             computation: direct semi-naive evaluation was selected over the \
             rewritings";
        ]
      else []
    in
    { winner; ranked; universe; measured; edb_facts; rounds_bound; diagnostics }
  end

let g x =
  if Float.is_integer x && Float.abs x < 1e7 then Fmt.str "%.0f" x
  else Fmt.str "%.3g" x

let pp_g ppf x = Fmt.string ppf (g x)

let pp_report ppf t =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf
    "cost analysis: %s statistics, %d edb facts, universe %a, round horizon \
     %a@,"
    (if t.measured then "measured" else "symbolic")
    t.edb_facts pp_g t.universe pp_g t.rounds_bound;
  Fmt.pf ppf "  %-12s %-10s %10s %10s %10s %8s %12s@," "strategy" "verdict"
    "est_magic" "est_facts" "est_probes" "rounds" "score";
  List.iter
    (fun e ->
      let mark = if e.name = t.winner.name then "*" else " " in
      match e.verdict with
      | Viable ->
        Fmt.pf ppf "%s %-12s %-10s %10s %10s %10s %8s %12s@," mark e.name
          (if e.name = t.winner.name then "selected" else "viable")
          (g e.est_magic) (g e.est_facts) (g e.est_probes) (g e.est_rounds)
          (g e.score)
      | Inapplicable why ->
        Fmt.pf ppf "%s %-12s %-10s %s@," mark e.name "n/a" why
      | Excluded why ->
        Fmt.pf ppf "%s %-12s %-10s %s@," mark e.name "excluded" why)
    t.ranked;
  List.iter
    (fun (d : Diagnostic.t) ->
      Fmt.pf ppf "  %s: %s@," d.Diagnostic.code d.Diagnostic.message)
    t.diagnostics;
  Fmt.pf ppf "@]"
