(* Range-restriction (safety) pass.

   The binding model matches the evaluation engine: positive non-builtin
   literals bind their variables; an equality binds one side once the
   other side is fully bound (unification), iterated to a fixpoint;
   comparisons bind nothing and require all their variables bound. *)

open Datalog
module S = Set.Make (String)

let bindable_vars (r : Rule.t) =
  let positive = Rule.positive_body r in
  let base =
    List.concat_map Atom.vars
      (List.filter (fun a -> not (Atom.is_builtin a)) positive)
  in
  let bound = ref (S.of_list base) in
  let all_bound t = List.for_all (fun v -> S.mem v !bound) (Term.vars t) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a : Atom.t) ->
        match (a.pred, a.args) with
        | "=", [ l; rt ] ->
          let flow src dst =
            if all_bound src && not (all_bound dst) then begin
              bound := List.fold_left (fun s v -> S.add v s) !bound (Term.vars dst);
              changed := true
            end
          in
          flow l rt;
          flow rt l
        | _ -> ())
      positive
  done;
  !bound

let quote_vars vs = String.concat ", " (List.map (fun v -> "'" ^ v ^ "'") vs)

let plural = function [ _ ] -> "" | _ -> "s"

let check_rule ctx i (r : Rule.t) =
  let bound = bindable_vars r in
  let unrestricted vs = List.filter (fun v -> not (S.mem v bound)) vs in
  let negated =
    List.concat
      (List.mapi
         (fun j lit ->
           match lit with
           | Rule.Pos _ -> []
           | Rule.Neg a -> (
             match unrestricted (Atom.vars a) with
             | [] -> []
             | vs ->
               [
                 Diagnostic.error ~code:"E001"
                   ~span:(Ctx.lit_span ctx i j)
                   (Fmt.str
                      "variable%s %s of negated literal '%a' occur%s in no \
                       positive body literal"
                      (plural vs) (quote_vars vs) Atom.pp a
                      (match vs with [ _ ] -> "s" | _ -> ""));
               ]))
         r.Rule.body)
  in
  let comparisons =
    List.concat
      (List.mapi
         (fun j lit ->
           match lit with
           | Rule.Pos a when Atom.is_builtin a && a.Atom.pred <> "=" -> (
             match unrestricted (Atom.vars a) with
             | [] -> []
             | vs ->
               [
                 Diagnostic.error ~code:"E002"
                   ~span:(Ctx.lit_span ctx i j)
                   (Fmt.str
                      "comparison '%a' cannot be evaluated: variable%s %s %s \
                       never bound"
                      Atom.pp a (plural vs) (quote_vars vs)
                      (match vs with [ _ ] -> "is" | _ -> "are"));
               ])
           | _ -> [])
         r.Rule.body)
  in
  let head =
    match unrestricted (Atom.vars r.Rule.head) with
    | [] -> []
    | vs ->
      let msg =
        if Rule.is_fact r then
          Fmt.str "non-ground fact: variable%s %s %s not bound by anything"
            (plural vs) (quote_vars vs)
            (match vs with [ _ ] -> "is" | _ -> "are")
        else
          Fmt.str
            "head variable%s %s occur%s in no positive body literal; the rule \
             is unsafe for bottom-up evaluation unless a binding rewriting \
             supplies the value%s"
            (plural vs) (quote_vars vs)
            (match vs with [ _ ] -> "s" | _ -> "")
            (plural vs)
      in
      [ Diagnostic.warning ~code:"W001" ~span:(Ctx.head_span ctx i) msg ]
  in
  negated @ comparisons @ head

let run (ctx : Ctx.t) =
  List.concat (List.mapi (check_rule ctx) (Program.rules ctx.Ctx.program))
