(** Cost-based strategy selection.

    Scores each candidate evaluation strategy (plain semi-naive, the
    four rewritings of the paper under two sip strategies, and the
    Section 8 semijoin variants of counting) by running {!Pass_card}
    over the rewritten program with the query's magic seeds installed,
    and ranks them by [weight * (est_probes + 4 * est_facts)], where
    [weight] prices each strategy's constant per-operation machinery
    (counting's index arithmetic costs 2-3x a plain probe).  Strategies
    the
    Section 10 report or the data shape rule out (cyclic data under
    counting, overflow-deep chains, path-count explosion, unsafe
    non-Datalog magic, unbound heads under direct evaluation) are
    excluded with a human-readable reason rather than mis-scored. *)

open Datalog
module C := Magic_core

type verdict =
  | Viable
  | Inapplicable of string  (** the rewriting rejects the program *)
  | Excluded of string  (** statically unsafe or out of index range *)

type estimate = {
  name : string;  (** method name as in {!C.Rewrite.methods} *)
  method_ : C.Rewrite.method_;
  verdict : verdict;
  est_magic : float;  (** estimated generated-guard fact count *)
  est_facts : float;  (** estimated total derived facts *)
  est_probes : float;  (** estimated join probes to fixpoint *)
  est_rounds : float;
  widened : string list;  (** predicates whose fixpoint was widened *)
  score : float;
      (** [weight * (est_probes + 4 * est_facts)]; [infinity] unless
          viable *)
}

type t = {
  winner : estimate;
  ranked : estimate list;  (** all candidates, best score first *)
  universe : float;
  measured : bool;  (** extensional statistics were available *)
  edb_facts : int;
  rounds_bound : float;
  diagnostics : Diagnostic.t list;  (** [W060]/[W061]/[W062] *)
}

val candidate_names : string list
(** The strategies [choose] considers, in tie-break order. *)

val choose : ?db:Engine.Database.t -> ?only:string list -> Program.t -> Atom.t -> t
(** [choose ?db program query]: [program] must be fact-free (use
    {!Datalog.Parser.split_facts}); [db] holds the extensional facts.
    [only] restricts the candidate set to the named strategies (the
    session path considers just what it can materialize).  Never raises
    on analyzable input: candidates whose rewriting fails are marked
    [Inapplicable].  When the query's predicate is not derived the
    trivial semi-naive plan wins outright. *)

val pp_report : t Fmt.t
(** Multi-line human-readable cost report (the [--cost] output). *)
