(** Shared input of the analysis passes: the program as parsed (facts still
    inline, so rule indices align with the parser's source map), the query,
    and the span side-table.  All span accessors degrade to {!Datalog.Loc.dummy}
    when no source map is available, so passes work on programs built
    programmatically too. *)

open Datalog

type t = {
  program : Program.t;
  query : Atom.t option;
  srcmap : Parser.source_map;
}

val make : ?srcmap:Parser.source_map -> ?query:Atom.t -> Program.t -> t

val rule_span : t -> int -> Loc.t
val head_span : t -> int -> Loc.t

val lit_span : t -> int -> int -> Loc.t
(** Span of body literal [j] of rule [i]; falls back to the rule's span. *)

val query_span : t -> Loc.t
