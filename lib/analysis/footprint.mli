(** Predicate-level dependency footprints over a program's dependency
    graph: for each predicate, the set of predicates it transitively
    reads (EDB and IDB alike, itself included), plus whether any
    dependency inside that set is negated.

    This is the invalidation granule for caches over derived views: a
    transaction that touches no predicate of a cached query's footprint
    cannot have changed that query's answers; and when the footprint is
    negation-free, every change it {e can} cause is monotone in the
    touched relations, so insert-only transactions admit in-place
    repair by appending maintained delta rows.

    Computed over whatever program is actually maintained — for a magic
    session that is the rewritten program, so footprints see recursion
    through magic and supplementary predicates as ordinary
    reachability. *)

open Datalog

type t

type index
(** Per-program memo of footprints.  Lookups memoize; the structure is
    not thread-safe, so concurrent callers must serialize access (the
    serving registry computes footprints under its cache mutex). *)

val index : Program.t -> index

val of_pred : index -> Symbol.t -> t
(** The footprint of a predicate: {!Depgraph.reachable} from it (base
    predicates included, the predicate itself included), with
    [neg_free] false iff some reachable predicate depends negatively on
    anything.  A predicate without rules (extensional, or simply
    unknown to the program) has the singleton footprint of itself. *)

val preds : t -> Symbol.Set.t
val neg_free : t -> bool
val mem : t -> Symbol.t -> bool

val intersects : t -> Symbol.Set.t -> bool
(** Does the footprint meet the given predicate set?  Iterates the
    smaller side. *)
