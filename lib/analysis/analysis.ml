(* Static analysis of Datalog programs: a multi-pass pipeline producing
   source-located diagnostics.

   Program-level passes (arity consistency, range restriction,
   stratification, reachability, singleton lints) always run.  When a
   query is present the adorned-level passes run on top: sip validity and
   per-adornment head bindability, the Section 10 safety report, and the
   rewrite-invariant linter over each requested strategy.  Adorned passes
   are skipped as soon as a program-level error is found — adornment of a
   broken program would only raise. *)

open Datalog
module C = Magic_core
module Diagnostic = Diagnostic
module Ctx = Ctx
module Pass_safety = Pass_safety
module Pass_deps = Pass_deps
module Pass_lints = Pass_lints
module Pass_sip = Pass_sip
module Pass_card = Pass_card
module Pass_cost = Pass_cost
module Rewrite_lint = Rewrite_lint
module Footprint = Footprint

let all_rewritings = [ C.Rewrite.GMS; C.Rewrite.GSMS; C.Rewrite.GC; C.Rewrite.GSC ]

(* [Parser.split_facts], but returning a map from the fact-free program's
   rule indices back to the parsed program's clause indices, so adorned
   diagnostics can find their source spans *)
let split_with_indices program =
  let rules = Program.rules program in
  let rule_heads =
    List.filter_map
      (fun (r : Rule.t) ->
        if Rule.is_fact r then None else Some (Atom.symbol r.Rule.head))
      rules
  in
  let extensional (r : Rule.t) =
    Rule.is_fact r
    && Atom.is_ground r.Rule.head
    && not (List.exists (Symbol.equal (Atom.symbol r.Rule.head)) rule_heads)
  in
  let proper =
    List.filteri (fun _ _ -> true) rules
    |> List.mapi (fun i r -> (i, r))
    |> List.filter (fun (_, r) -> not (extensional r))
  in
  let orig = Array.of_list (List.map fst proper) in
  ( Program.make (List.map snd proper),
    fun i -> if i >= 0 && i < Array.length orig then orig.(i) else i )

let section10 ctx (report : C.Safety.report) =
  let span = Ctx.query_span ctx in
  let w050 =
    if report.C.Safety.magic_safe then []
    else
      [
        Diagnostic.warning ~code:"W050" ~span
          "the binding graph has a cycle of non-positive length: the magic \
           rewritings of this non-Datalog program may not terminate \
           (Section 10)";
      ]
  in
  let w051 =
    if not report.C.Safety.counting_statically_diverges then []
    else
      [
        Diagnostic.warning ~code:"W051" ~span
          "the bound-argument graph is cyclic: counting indices can grow \
           without bound on cyclic data, so the counting rewritings may \
           diverge (Section 10)";
      ]
  in
  w050 @ w051

let query_checks ctx ~sip ~rewritings =
  match ctx.Ctx.query with
  | None -> []
  | Some q ->
    let idb, orig_of = split_with_indices ctx.Ctx.program in
    if not (Program.is_derived idb (Atom.symbol q)) then []
    else begin
      match C.Adorn.adorn ~strategy:sip idb q with
      | exception Invalid_argument msg ->
        [ Diagnostic.error ~code:"E030" ~span:(Ctx.query_span ctx) msg ]
      | ad ->
        let sip_diags = Pass_sip.run ctx ~orig_of ad in
        let safety_diags = section10 ctx (C.Safety.analyze ad) in
        let rewrite_diags =
          if Diagnostic.has_errors sip_diags then []
          else
            List.concat_map
              (fun strategy ->
                let tag = C.Rewrite.rewriting_to_string strategy in
                let options =
                  { C.Rewrite.default_options with C.Rewrite.sip }
                in
                match C.Rewrite.rewrite ~options strategy idb q with
                | exception Invalid_argument msg ->
                  (* the strategy rejects the program (e.g. counting needs
                     indices to flow from the query): inapplicable, not broken *)
                  [
                    Diagnostic.warning ~code:"W030" ~span:(Ctx.query_span ctx)
                      (Fmt.str "%s rewriting is inapplicable: %s" tag msg);
                  ]
                | exception exn ->
                  [
                    Diagnostic.error ~code:"E049" ~span:(Ctx.query_span ctx)
                      (Fmt.str "%s rewriting failed: %s" tag
                         (Printexc.to_string exn));
                  ]
                | rw ->
                  List.map
                    (fun (d : Diagnostic.t) ->
                      { d with Diagnostic.message = tag ^ ": " ^ d.Diagnostic.message })
                    (Rewrite_lint.check rw))
              rewritings
        in
        sip_diags @ safety_diags @ rewrite_diags
    end

let check ?srcmap ?(sip = C.Sip.full_left_to_right) ?(rewritings = all_rewritings)
    ?query program =
  let ctx = Ctx.make ?srcmap ?query program in
  let program_diags =
    Pass_lints.arities ctx @ Pass_safety.run ctx @ Pass_deps.run ctx
    @ Pass_lints.singletons ctx
  in
  let adorned_diags =
    if Diagnostic.has_errors program_diags then []
    else query_checks ctx ~sip ~rewritings
  in
  Diagnostic.sort (program_diags @ adorned_diags)

let check_text ?(sip = C.Sip.full_left_to_right) ?(rewritings = all_rewritings)
    text =
  match Parser.parse_program_spanned text with
  | Error { Parser.message; span } ->
    [ Diagnostic.error ~code:"E100" ~span ("syntax error: " ^ message) ]
  | Ok (program, query, srcmap) -> check ~srcmap ~sip ~rewritings ?query program

let preflight ?srcmap ?query program =
  Diagnostic.errors (check ?srcmap ~rewritings:[] ?query program)

(* strategy selection (Pass_cost over Pass_card) *)

type choice = Pass_cost.t

let choose_strategy = Pass_cost.choose

let choose_session_strategy ?db program query =
  let c = Pass_cost.choose ?db ~only:[ "gms"; "gsms" ] program query in
  match c.Pass_cost.winner.Pass_cost.name with
  | "gsms" -> (`GSMS, c)
  | _ -> (`GMS, c)

(* the registry: (code, severity, one-line summary, pass of origin) *)
let codes : (string * Diagnostic.severity * string * string) list =
  [
    ("E100", Diagnostic.Error, "syntax error", "parser");
    ("E020", Diagnostic.Error, "predicate used with inconsistent arities", "pass_lints");
    ("W020", Diagnostic.Warning, "singleton variable", "pass_lints");
    ("W021", Diagnostic.Warning, "'_'-prefixed variable occurs more than once", "pass_lints");
    ("E001", Diagnostic.Error, "variable of a negated literal is not range-restricted", "pass_safety");
    ("E002", Diagnostic.Error, "comparison over a variable that is never bound", "pass_safety");
    ("W001", Diagnostic.Warning, "head variable not bound by the positive body", "pass_safety");
    ("E010", Diagnostic.Error, "negation through recursion (not stratifiable)", "pass_deps");
    ("W010", Diagnostic.Warning, "dead rule: unreachable from the query", "pass_deps");
    ("W011", Diagnostic.Warning, "predicate defined but never used", "pass_deps");
    ("E003", Diagnostic.Error, "head variable unbindable under the query's binding pattern", "pass_sip");
    ("E030", Diagnostic.Error, "invalid sideways information passing graph", "pass_sip");
    ("E031", Diagnostic.Error, "sip arc draws bindings from a later literal", "pass_sip");
    ("W050", Diagnostic.Warning, "magic rewriting may not terminate (Section 10)", "section10");
    ("W051", Diagnostic.Warning, "counting indices may diverge (Section 10)", "section10");
    ("E040", Diagnostic.Error, "rewritten program: inconsistent predicate arity", "rewrite_lint");
    ("E041", Diagnostic.Error, "rewritten program: generated predicate never defined or seeded", "rewrite_lint");
    ("E042", Diagnostic.Error, "rewritten program: generated predicate arity contradicts its role", "rewrite_lint");
    ("E043", Diagnostic.Error, "rewritten program: malformed counting index term", "rewrite_lint");
    ("E044", Diagnostic.Error, "rewritten program: missing or ill-formed magic seed", "rewrite_lint");
    ("E045", Diagnostic.Error, "rewritten program: negated literal lost range restriction", "rewrite_lint");
    ("E046", Diagnostic.Error, "rewritten program: not stratifiable", "rewrite_lint");
    ("E047", Diagnostic.Error, "rewritten program: modified rule lacks its magic guard", "rewrite_lint");
    ("E049", Diagnostic.Error, "rewriting aborted with an internal error", "driver");
    ("W030", Diagnostic.Warning, "rewriting strategy inapplicable to this program", "driver");
    ("W060", Diagnostic.Warning, "recursive cardinality estimate widened (coarse ranking)", "pass_card");
    ("W061", Diagnostic.Warning, "no extensional statistics: symbolic cost estimates", "pass_card");
    ("W062", Diagnostic.Warning, "query bindings unrestrictive: direct evaluation selected", "pass_cost");
  ]
