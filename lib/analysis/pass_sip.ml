(* Adorned-program pass: sip validity (Section 3) and per-adornment
   head bindability.

   These checks need the query: they run on the adorned rule set, i.e. on
   the (predicate, adornment) pairs actually reachable from the query's
   binding pattern.  [orig_of] maps an adorned rule's [source_index]
   (an index into the fact-free program given to {!Magic_core.Adorn.adorn})
   back to the clause index of the parsed program, for source spans. *)

open Datalog
module C = Magic_core
module S = Set.Make (String)

let check_sip ?(span = Loc.dummy) rule adornment sip =
  match C.Sip.validate rule adornment sip with
  | Ok () -> []
  | Error msg ->
    [ Diagnostic.error ~code:"E030" ~span (Fmt.str "invalid sip: %s" msg) ]

(* Section 3's justification condition in normalized form: once the body
   is in sip order, every arc into literal j may draw only on the head
   and on literals before j. *)
let check_arc_order ?(span = Loc.dummy) (ar : C.Adorn.adorned_rule) =
  List.concat_map
    (fun (arc : C.Sip.arc) ->
      let late =
        List.filter_map
          (function
            | C.Sip.Head -> None
            | C.Sip.Body k -> if k >= arc.C.Sip.target then Some k else None)
          arc.C.Sip.tail
      in
      match late with
      | [] -> []
      | k :: _ ->
        [
          Diagnostic.error ~code:"E031" ~span
            (Fmt.str
               "sip arc into body literal %d draws bindings from literal %d, \
                which does not precede it: bound variables must be justified \
                by the head or earlier literals"
               (arc.C.Sip.target + 1) (k + 1));
        ])
    ar.C.Adorn.sip.C.Sip.arcs

let check_head_bindable ctx orig_index (ar : C.Adorn.adorned_rule) =
  let rule = ar.C.Adorn.rule in
  let bindable = Pass_safety.bindable_vars rule in
  let head_bound =
    List.concat_map Term.vars (C.Rew_util.head_bound_args ar)
  in
  let missing =
    List.filter
      (fun v ->
        (not (S.mem v bindable)) && not (List.mem v head_bound))
      (Atom.vars rule.Rule.head)
  in
  match missing with
  | [] -> []
  | vs ->
    [
      Diagnostic.error ~code:"E003"
        ~span:(Ctx.head_span ctx orig_index)
        (Fmt.str
           "head variable%s %s of '%s' (adorned %s) cannot be bound: not in \
            any positive body literal and not in a bound head argument; no \
            rewriting can make this rule safe for the query"
           (match vs with [ _ ] -> "" | _ -> "s")
           (String.concat ", " (List.map (fun v -> "'" ^ v ^ "'") vs))
           ar.C.Adorn.head_pred
           (C.Adornment.to_string ar.C.Adorn.head_adornment));
    ]

let run ctx ~orig_of (ad : C.Adorn.t) =
  List.concat_map
    (fun (ar : C.Adorn.adorned_rule) ->
      let oi = orig_of ar.C.Adorn.source_index in
      let span = Ctx.rule_span ctx oi in
      check_sip ~span ar.C.Adorn.rule ar.C.Adorn.head_adornment ar.C.Adorn.sip
      @ check_arc_order ~span ar
      @ check_head_bindable ctx oi ar)
    ad.C.Adorn.rules
