open Datalog

type t = {
  program : Program.t;  (** as parsed, facts included, index-aligned with [srcmap] *)
  query : Atom.t option;
  srcmap : Parser.source_map;
}

let make ?(srcmap = Parser.empty_map) ?query program = { program; query; srcmap }

let clause t i = Parser.rule_spans t.srcmap i

let rule_span t i =
  match clause t i with Some c -> c.Parser.clause_span | None -> Loc.dummy

let head_span t i =
  match clause t i with Some c -> c.Parser.head_span | None -> Loc.dummy

let lit_span t i j =
  match clause t i with
  | Some c -> (
    match List.nth_opt c.Parser.literal_spans j with
    | Some s when not (Loc.is_dummy s) -> s
    | _ -> c.Parser.clause_span)
  | None -> Loc.dummy

let query_span t = Option.value ~default:Loc.dummy t.srcmap.Parser.query_span
