(** Structural lints.

    - [E020] (error): a predicate name is used with two different arities.
      (The engine would treat these as distinct relations — {!Datalog.Symbol.t}
      includes the arity — which is never what the source meant.)
    - [W020] (warning): a variable occurs exactly once in a rule.
      Variables starting with ['_'] (including the parser's generated names
      for [_] and [?]) are exempt. *)

val arities : Ctx.t -> Diagnostic.t list
val singletons : Ctx.t -> Diagnostic.t list
val run : Ctx.t -> Diagnostic.t list
