(** Sip and binding checks on the adorned rule set (Section 3).

    - [E030] (error): a sip violates the paper's conditions (1), (2i-iii)
      or (3), per {!Magic_core.Sip.validate}.
    - [E031] (error): in the sip-ordered body, an arc draws bindings from a
      literal that does not precede its target — the information flow is
      not justified by the head or earlier literals.
    - [E003] (error): a head variable can be bound neither by the positive
      body nor by a bound head argument under the adornment actually
      reached from the query; the rule is unsafe under {e every} rewriting. *)

open Datalog
module C = Magic_core

val check_sip :
  ?span:Loc.t -> Rule.t -> C.Adornment.t -> C.Sip.t -> Diagnostic.t list

val check_arc_order : ?span:Loc.t -> C.Adorn.adorned_rule -> Diagnostic.t list

val check_head_bindable :
  Ctx.t -> int -> C.Adorn.adorned_rule -> Diagnostic.t list

val run : Ctx.t -> orig_of:(int -> int) -> C.Adorn.t -> Diagnostic.t list
