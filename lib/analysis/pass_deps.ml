(* Dependency-graph pass: stratification and reachability diagnostics. *)

open Datalog

let pred_name (s : Symbol.t) = s.Symbol.name

let stratification ctx g =
  match Depgraph.negative_cycle g with
  | None -> []
  | Some { Depgraph.cycle; through } ->
    let span = Ctx.lit_span ctx through.Depgraph.rule_index through.Depgraph.body_position in
    let cycle_str = String.concat " -> " (List.map pred_name cycle) in
    [
      Diagnostic.error ~code:"E010" ~span
        (Fmt.str
           "negation through recursion: '%s' depends negatively on '%s', \
            which depends back on '%s'; the program is not stratifiable"
           (pred_name through.Depgraph.src)
           (pred_name through.Depgraph.dst)
           (pred_name through.Depgraph.src))
      |> Diagnostic.add_note (Fmt.str "cycle: %s" cycle_str);
    ]

let reachability ctx g =
  match ctx.Ctx.query with
  | None -> []
  | Some q ->
    let qsym = Atom.symbol q in
    let reach = Depgraph.reachable g [ qsym ] in
    let rules = Program.rules ctx.Ctx.program in
    let dead =
      List.concat
        (List.mapi
           (fun i (r : Rule.t) ->
             let h = Atom.symbol r.Rule.head in
             if Symbol.Set.mem h reach || Rule.is_fact r then []
             else
               [
                 Diagnostic.warning ~code:"W010" ~span:(Ctx.rule_span ctx i)
                   (Fmt.str
                      "dead rule: predicate '%s' is not reachable from the \
                       query '%a'"
                      (pred_name h) Atom.pp q);
               ])
           rules)
    in
    (* derived predicates referenced by no body and distinct from the query *)
    let used_in_bodies =
      List.fold_left
        (fun s (e : Depgraph.edge) -> Symbol.Set.add e.Depgraph.dst s)
        Symbol.Set.empty (Depgraph.edges g)
    in
    let first_def sym =
      let rec go i = function
        | [] -> Loc.dummy
        | (r : Rule.t) :: rest ->
          if Symbol.equal (Atom.symbol r.Rule.head) sym then Ctx.head_span ctx i
          else go (i + 1) rest
      in
      go 0 rules
    in
    let unused =
      Symbol.Set.fold
        (fun sym acc ->
          if Symbol.equal sym qsym || Symbol.Set.mem sym used_in_bodies then acc
          else
            Diagnostic.warning ~code:"W011" ~span:(first_def sym)
              (Fmt.str
                 "predicate '%s' is defined but never used and is not the query"
                 (pred_name sym))
            :: acc)
        (Depgraph.derived g) []
    in
    dead @ List.rev unused

let run (ctx : Ctx.t) =
  let g = Program.depgraph ctx.Ctx.program in
  stratification ctx g @ reachability ctx g
