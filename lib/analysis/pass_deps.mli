(** Predicate-dependency diagnostics, over {!Datalog.Depgraph}.

    - [E010] (error): negation occurs inside a recursive component; the
      diagnostic points at the offending negated literal and carries the
      concrete predicate cycle as a note.
    - [W010] (warning): a rule's head predicate is unreachable from the
      query through rule bodies (dead rule).  Facts are exempt: an unused
      relation is data, not logic.
    - [W011] (warning): a derived predicate is neither the query predicate
      nor referenced by any rule body.

    The reachability warnings need a query and are skipped without one. *)

val run : Ctx.t -> Diagnostic.t list
