(* Invariant linter for the output of the four rewriting strategies.

   Rewritten programs are generated, so these diagnostics carry no source
   spans; each one names the offending rule or atom in its message.  The
   checks are derived from the shape Sections 4-7 of the paper promise:

   - every predicate name is used at one arity everywhere (E040);
   - every generated predicate that occurs in a body has a defining rule
     or a seed (E041);
   - generated predicates have the arity their role dictates: adorned =
     original arity, magic = number of bound positions, cnt/indexed add
     the index fields (E042);
   - counting index arguments are well-formed index terms under both the
     numeric and the path encodings (E043);
   - a query with bound arguments yields at least one seed, and every
     seed is a ground magic/cnt fact (E044);
   - range restriction of negated literals still holds (E045) and the
     program is still stratifiable (E046);
   - every rule defining a bound-adorned (or bound-indexed) predicate is
     guarded by a magic/supplementary/counting literal (E047). *)

open Datalog
module C = Magic_core

let err code fmt = Fmt.kstr (fun m -> Diagnostic.error ~code m) fmt

let role_name = function
  | C.Naming.Adorned _ -> "adorned"
  | C.Naming.Magic _ -> "magic"
  | C.Naming.Label _ -> "label"
  | C.Naming.Supp _ -> "supplementary"
  | C.Naming.Indexed _ -> "indexed"
  | C.Naming.Cnt _ -> "counting"
  | C.Naming.Supcnt _ -> "supplementary counting"

module SS = Set.Make (String)

let pred_set atoms = SS.of_list (List.map (fun (a : Atom.t) -> a.Atom.pred) atoms)

let check_arities (rw : C.Rewritten.t) =
  let tbl : (string, int * string) Hashtbl.t = Hashtbl.create 32 in
  let diags = ref [] in
  let visit where (a : Atom.t) =
    if not (Atom.is_builtin a) then
      match Hashtbl.find_opt tbl a.Atom.pred with
      | None -> Hashtbl.replace tbl a.Atom.pred (Atom.arity a, where)
      | Some (arity0, where0) when arity0 <> Atom.arity a ->
        diags :=
          err "E040" "predicate '%s' has arity %d in %s but arity %d in %s"
            a.Atom.pred (Atom.arity a) where arity0 where0
          :: !diags
      | Some _ -> ()
  in
  List.iteri
    (fun i (r : Rule.t) ->
      let where = Fmt.str "rule %d (%a)" i Rule.pp r in
      visit where r.Rule.head;
      List.iter (fun a -> visit where a) (Rule.body_atoms r))
    (Program.rules rw.C.Rewritten.program);
  List.iter (fun s -> visit (Fmt.str "seed %a" Atom.pp s) s) rw.C.Rewritten.seeds;
  visit "the query" rw.C.Rewritten.query;
  List.rev !diags

let check_roles (rw : C.Rewritten.t) =
  let naming = rw.C.Rewritten.naming in
  let rules = Program.rules rw.C.Rewritten.program in
  let defined = pred_set (List.map (fun (r : Rule.t) -> r.Rule.head) rules) in
  let seeded = pred_set rw.C.Rewritten.seeds in
  let body_atoms =
    List.filter
      (fun a -> not (Atom.is_builtin a))
      (List.concat_map Rule.body_atoms rules)
  in
  let used = SS.add rw.C.Rewritten.query.Atom.pred (pred_set body_atoms) in
  let arity_of : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (a : Atom.t) ->
      if not (Atom.is_builtin a) then
        Hashtbl.replace arity_of a.Atom.pred (Atom.arity a))
    (List.map (fun (r : Rule.t) -> r.Rule.head) rules
    @ body_atoms @ rw.C.Rewritten.seeds
    @ [ rw.C.Rewritten.query ]);
  let idx = rw.C.Rewritten.index_fields in
  let expected_arity = function
    | C.Naming.Adorned (_, a) -> Some (C.Adornment.arity a)
    | C.Naming.Magic (_, a) -> Some (C.Adornment.bound_count a)
    | C.Naming.Cnt (_, a) -> Some (C.Adornment.bound_count a + idx)
    | C.Naming.Indexed (_, a) -> Some (C.Adornment.arity a + idx)
    | C.Naming.Label _ | C.Naming.Supp _ | C.Naming.Supcnt _ -> None
  in
  let all_preds = SS.union used (SS.union defined seeded) in
  SS.fold
    (fun pred acc ->
      match C.Naming.role naming pred with
      | None -> acc
      | Some role ->
        let undefined =
          if SS.mem pred used && not (SS.mem pred defined || SS.mem pred seeded)
          then
            [
              err "E041"
                "%s predicate '%s' occurs in a rule body but has no defining \
                 rule and no seed"
                (role_name role) pred;
            ]
          else []
        in
        let wrong_arity =
          match (expected_arity role, Hashtbl.find_opt arity_of pred) with
          | Some want, Some got when want <> got ->
            [
              err "E042" "%s predicate '%s' has arity %d but its role dictates %d"
                (role_name role) pred got want;
            ]
          | _ -> []
        in
        acc @ undefined @ wrong_arity)
    all_preds []

(* counting index terms: numeric (I, I + 1, K * m + r, ...) or path
   (s(I), k(r, K), h(j, H), e); ground integers and variables seed both *)
let rec index_term_ok (t : Term.t) =
  match t with
  | Term.Var _ | Term.Int _ -> true
  | Term.Sym "e" -> true
  | Term.Sym _ -> false
  | Term.Add (a, b) | Term.Mul (a, b) | Term.Div (a, b) ->
    index_term_ok a && index_term_ok b
  | Term.App (("s" | "k" | "h"), args) -> List.for_all index_term_ok args
  | Term.App _ -> false

let check_index_terms (rw : C.Rewritten.t) =
  let idx = rw.C.Rewritten.index_fields in
  if idx = 0 then []
  else begin
    let naming = rw.C.Rewritten.naming in
    let indexed (a : Atom.t) =
      match C.Naming.role naming a.Atom.pred with
      | Some (C.Naming.Indexed _ | C.Naming.Cnt _ | C.Naming.Supcnt _) -> true
      | _ -> false
    in
    let check where (a : Atom.t) =
      if indexed a then
        List.filteri (fun i _ -> i < idx) a.Atom.args
        |> List.filter_map (fun t ->
               if index_term_ok t then None
               else
                 Some
                   (err "E043"
                      "malformed counting index term '%a' in '%a' (%s)" Term.pp
                      t Atom.pp a where))
      else []
    in
    List.concat
      (List.mapi
         (fun i (r : Rule.t) ->
           let where = Fmt.str "rule %d" i in
           check where r.Rule.head
           @ List.concat_map (check where) (Rule.body_atoms r))
         (Program.rules rw.C.Rewritten.program))
    @ List.concat_map (check "seed") rw.C.Rewritten.seeds
    @ check "query" rw.C.Rewritten.query
  end

let check_seeds (rw : C.Rewritten.t) =
  let naming = rw.C.Rewritten.naming in
  let per_seed =
    List.concat_map
      (fun (s : Atom.t) ->
        let ground =
          if Atom.is_ground s then []
          else [ err "E044" "seed '%a' is not ground" Atom.pp s ]
        in
        let magic =
          match C.Naming.role naming s.Atom.pred with
          | Some (C.Naming.Magic _ | C.Naming.Cnt _) -> []
          | _ ->
            [
              err "E044" "seed '%a' is not a magic or counting fact" Atom.pp s;
            ]
        in
        ground @ magic)
      rw.C.Rewritten.seeds
  in
  let missing =
    let _, qa = rw.C.Rewritten.adorned.C.Adorn.query_pred in
    if
      C.Adornment.has_bound qa
      && rw.C.Rewritten.adorned.C.Adorn.rules <> []
      && rw.C.Rewritten.seeds = []
    then
      [
        err "E044"
          "the query binds arguments (adornment %s) but the rewriting \
           produced no seed"
          (C.Adornment.to_string qa);
      ]
    else []
  in
  per_seed @ missing

let check_range_restriction (rw : C.Rewritten.t) =
  List.concat
    (List.mapi
       (fun i (r : Rule.t) ->
         List.map
           (fun (v, (a : Atom.t)) ->
             err "E045"
               "rewritten rule %d (%a): variable '%s' of negated literal \
                '%a' occurs in no positive literal"
               i Rule.pp r v Atom.pp a)
           (Rule.unrestricted_negated_vars r))
       (Program.rules rw.C.Rewritten.program))

let check_stratifiable (rw : C.Rewritten.t) =
  match Depgraph.negative_cycle (Program.depgraph rw.C.Rewritten.program) with
  | None -> []
  | Some { Depgraph.cycle; _ } ->
    [
      err "E046" "the rewritten program is not stratifiable (cycle: %s)"
        (String.concat " -> " (List.map (fun (s : Symbol.t) -> s.Symbol.name) cycle));
    ]

let check_guards (rw : C.Rewritten.t) =
  let naming = rw.C.Rewritten.naming in
  let guarded_head (a : Atom.t) =
    match C.Naming.role naming a.Atom.pred with
    | Some (C.Naming.Adorned (_, ad) | C.Naming.Indexed (_, ad)) ->
      C.Adornment.has_bound ad
    | _ -> false
  in
  let is_guard (a : Atom.t) =
    match C.Naming.role naming a.Atom.pred with
    | Some
        ( C.Naming.Magic _ | C.Naming.Supp _ | C.Naming.Cnt _
        | C.Naming.Supcnt _ | C.Naming.Label _ ) ->
      true
    | _ -> false
  in
  List.concat
    (List.mapi
       (fun i (r : Rule.t) ->
         if
           guarded_head r.Rule.head
           && not (List.exists is_guard (Rule.positive_body r))
         then
           [
             err "E047"
               "rule %d (%a) defines bound-adorned predicate '%s' without a \
                guarding magic, supplementary or counting literal"
               i Rule.pp r r.Rule.head.Atom.pred;
           ]
         else [])
       (Program.rules rw.C.Rewritten.program))

let check (rw : C.Rewritten.t) =
  check_arities rw @ check_roles rw @ check_index_terms rw @ check_seeds rw
  @ check_range_restriction rw @ check_stratifiable rw @ check_guards rw
