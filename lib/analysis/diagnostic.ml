open Datalog

type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  message : string;
  span : Loc.t;
  notes : (string * Loc.t) list;
}

let make severity ?(span = Loc.dummy) ?(notes = []) ~code message =
  { code; severity; message; span; notes }

let error = make Error
let warning = make Warning

let with_span span t = if Loc.is_dummy t.span then { t with span } else t
let add_note ?(span = Loc.dummy) msg t = { t with notes = t.notes @ [ (msg, span) ] }

let is_error t = t.severity = Error

let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

let severity_string = function Error -> "error" | Warning -> "warning"

(* stable presentation order: by source position, then code, then message *)
let compare a b =
  let pos t = if Loc.is_dummy t.span then max_int else t.span.Loc.start.Loc.offset in
  let c = Int.compare (pos a) (pos b) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let sort ds = List.stable_sort compare ds

let pp_header ?file ppf t =
  let pp_file ppf =
    match file with Some f -> Fmt.pf ppf "%s:" f | None -> ()
  in
  if Loc.is_dummy t.span then
    Fmt.pf ppf "%t %s[%s]: %s" pp_file (severity_string t.severity) t.code t.message
  else
    Fmt.pf ppf "%t%a: %s[%s]: %s" pp_file Loc.pp t.span
      (severity_string t.severity) t.code t.message

(* caret-style excerpt of the first line the span covers:

     3 | p(X, Y) :- q(X).
       | ^^^^^^^^^^^^^^^^
*)
let pp_excerpt src ppf span =
  if not (Loc.is_dummy span) then begin
    let { Loc.line; col; _ } = span.Loc.start in
    let text = Loc.line_at src line in
    let width =
      if span.Loc.stop.Loc.line = line then max 1 (span.Loc.stop.Loc.col - col)
      else max 1 (String.length text - col + 1)
    in
    let gutter = Fmt.str "%d" line in
    let pad = String.make (String.length gutter) ' ' in
    Fmt.pf ppf "@,%s | %s@,%s | %s%s" gutter text pad
      (String.make (max 0 (col - 1)) ' ')
      (String.make width '^')
  end

let render ?src ?file ppf t =
  Fmt.pf ppf "@[<v>%a" (pp_header ?file) t;
  (match src with Some src -> pp_excerpt src ppf t.span | None -> ());
  List.iter
    (fun (msg, span) ->
      if Loc.is_dummy span then Fmt.pf ppf "@,  = note: %s" msg
      else begin
        Fmt.pf ppf "@,  = note: %s (at %a)" msg Loc.pp span;
        match src with Some src -> pp_excerpt src ppf span | None -> ()
      end)
    t.notes;
  Fmt.pf ppf "@]"

let pp ppf t = render ppf t

let summary ppf ds =
  let e = count Error ds and w = count Warning ds in
  match e, w with
  | 0, 0 -> Fmt.pf ppf "no diagnostics"
  | _ ->
    let part n what = Fmt.str "%d %s%s" n what (if n = 1 then "" else "s") in
    Fmt.pf ppf "%s"
      (String.concat ", "
         ((if e > 0 then [ part e "error" ] else [])
         @ (if w > 0 then [ part w "warning" ] else [])))
