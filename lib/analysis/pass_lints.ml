(* Structural lints: arity consistency and singleton variables. *)

open Datalog

(* E020 — every occurrence of a predicate name must agree on arity.
   Occurrences are visited in source order (head, then body literals, then
   the query) so the diagnostic lands on the later, conflicting use and
   the note points back at the first one. *)
let arities (ctx : Ctx.t) =
  let first : (string, int * Loc.t) Hashtbl.t = Hashtbl.create 16 in
  let diags = ref [] in
  let visit what (a : Atom.t) span =
    if not (Atom.is_builtin a) then
      let arity = Atom.arity a in
      match Hashtbl.find_opt first a.Atom.pred with
      | None -> Hashtbl.replace first a.Atom.pred (arity, span)
      | Some (arity0, span0) when arity0 <> arity ->
        diags :=
          (Diagnostic.error ~code:"E020" ~span
             (Fmt.str "%s '%s' has arity %d here but arity %d elsewhere" what
                a.Atom.pred arity arity0)
          |> Diagnostic.add_note ~span:span0
               (Fmt.str "first used with arity %d" arity0))
          :: !diags
      | Some _ -> ()
  in
  List.iteri
    (fun i (r : Rule.t) ->
      visit "predicate" r.Rule.head (Ctx.head_span ctx i);
      List.iteri
        (fun j lit -> visit "predicate" (Rule.atom_of_literal lit) (Ctx.lit_span ctx i j))
        r.Rule.body)
    (Program.rules ctx.Ctx.program);
  Option.iter (fun q -> visit "query predicate" q (Ctx.query_span ctx)) ctx.Ctx.query;
  List.rev !diags

(* W020 — a variable used exactly once in a rule is usually a typo; name
   it with a leading underscore (the parser generates such names for [_]
   and [?]) to silence the lint.  W021 is the converse: an
   underscore-prefixed name that the rule does join on. *)
let singletons (ctx : Ctx.t) =
  let check_rule i (r : Rule.t) =
    let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let rec count (t : Term.t) =
      match t with
      | Term.Var v ->
        Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      | Term.Int _ | Term.Sym _ -> ()
      | Term.App (_, ts) -> List.iter count ts
      | Term.Add (a, b) | Term.Mul (a, b) | Term.Div (a, b) ->
        count a;
        count b
    in
    let atoms = r.Rule.head :: Rule.body_atoms r in
    List.iter (fun (a : Atom.t) -> List.iter count a.Atom.args) atoms;
    let span_of v =
      (* first atom mentioning the variable: head, else a body literal *)
      if List.mem v (Atom.vars r.Rule.head) then Ctx.head_span ctx i
      else
        let rec go j = function
          | [] -> Ctx.rule_span ctx i
          | lit :: rest ->
            if List.mem v (Atom.vars (Rule.atom_of_literal lit)) then
              Ctx.lit_span ctx i j
            else go (j + 1) rest
        in
        go 0 r.Rule.body
    in
    (* report in first-occurrence order for stable output *)
    List.filter_map
      (fun v ->
        match Hashtbl.find_opt counts v with
        | Some 1 when String.length v > 0 && v.[0] <> '_' ->
          Some
            (Diagnostic.warning ~code:"W020" ~span:(span_of v)
               (Fmt.str
                  "variable '%s' occurs only once in the rule; prefix it with \
                   '_' if that is intended"
                  v))
        | Some n when n > 1 && String.length v > 1 && v.[0] = '_' ->
          Some
            (Diagnostic.warning ~code:"W021" ~span:(span_of v)
               (Fmt.str
                  "variable '%s' is spelled as unused ('_' prefix) but occurs \
                   %d times in the rule; drop the prefix if the join is \
                   intended"
                  v n))
        | _ -> None)
      (Rule.vars r)
  in
  List.concat (List.mapi check_rule (Program.rules ctx.Ctx.program))

let run (ctx : Ctx.t) = arities ctx @ singletons ctx
