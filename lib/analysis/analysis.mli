(** Multi-pass static analyzer with source-located diagnostics.

    The pipeline, in order:

    + arity consistency ([E020]) — {!Pass_lints};
    + range restriction / rule safety ([E001], [E002], [W001]) —
      {!Pass_safety};
    + dependency analysis: stratified negation with a concrete cycle
      witness, dead rules, unused predicates ([E010], [W010], [W011]) —
      {!Pass_deps};
    + singleton-variable lints ([W020], [W021]) — {!Pass_lints};
    + with a query: sip validity and head bindability on the adorned rule
      set ([E003], [E030], [E031]) — {!Pass_sip}; the Section 10 safety
      report ([W050], [W051]); and the rewrite-invariant linter
      ([E040]-[E047]) over each requested strategy — {!Rewrite_lint}.

    On demand (the [--cost]/[--strategy auto] paths, not the default
    pipeline): cardinality estimation ([W060], [W061]) — {!Pass_card} —
    and cost-based strategy selection ([W062]) — {!Pass_cost}.

    Exit-worthiness is the severity: a program is rejected iff some
    diagnostic is an error; warnings flag constructs that evaluate but
    deserve attention. *)

open Datalog
module C := Magic_core
module Diagnostic = Diagnostic
module Ctx = Ctx
module Pass_safety = Pass_safety
module Pass_deps = Pass_deps
module Pass_lints = Pass_lints
module Pass_sip = Pass_sip
module Pass_card = Pass_card
module Pass_cost = Pass_cost
module Rewrite_lint = Rewrite_lint
module Footprint = Footprint

val all_rewritings : C.Rewrite.rewriting list
(** GMS, GSMS, GC, GSC. *)

val check :
  ?srcmap:Parser.source_map ->
  ?sip:C.Sip.strategy ->
  ?rewritings:C.Rewrite.rewriting list ->
  ?query:Atom.t ->
  Program.t ->
  Diagnostic.t list
(** Run the full pipeline on a parsed program (facts still inline, as
    returned by {!Datalog.Parser.parse_program}); sorted by source
    position.  [rewritings] defaults to all four strategies; pass [[]] to
    skip the rewrite linter. *)

val check_text :
  ?sip:C.Sip.strategy ->
  ?rewritings:C.Rewrite.rewriting list ->
  string ->
  Diagnostic.t list
(** Parse and {!check} a source text; lexical and syntax errors are
    reported as [E100] diagnostics instead of exceptions. *)

val preflight :
  ?srcmap:Parser.source_map -> ?query:Atom.t -> Program.t -> Diagnostic.t list
(** The error-level program checks an evaluation should run first: every
    returned diagnostic is an {!Diagnostic.Error} that would make the
    engine raise or loop.  Used by the CLI before [eval]/[explain]/[compare]. *)

type choice = Pass_cost.t

val choose_strategy :
  ?db:Engine.Database.t -> ?only:string list -> Program.t -> Atom.t -> choice
(** Cost-based strategy selection: rank the candidate evaluation
    strategies for a fact-free program, query and extensional database
    — see {!Pass_cost.choose}. *)

val choose_session_strategy :
  ?db:Engine.Database.t ->
  Program.t ->
  Atom.t ->
  [ `GMS | `GSMS ] * choice
(** The session variant: pick among the rewrites a warm
    {!Incr.Session} can materialize and serve dynamic magic seeds
    from. *)

val codes : (string * Diagnostic.severity * string * string) list
(** The stable diagnostic code table (code, severity, one-line summary,
    pass of origin), grouped by pass. *)
