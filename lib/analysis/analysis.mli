(** Multi-pass static analyzer with source-located diagnostics.

    The pipeline, in order:

    + arity consistency ([E020]) — {!Pass_lints};
    + range restriction / rule safety ([E001], [E002], [W001]) —
      {!Pass_safety};
    + dependency analysis: stratified negation with a concrete cycle
      witness, dead rules, unused predicates ([E010], [W010], [W011]) —
      {!Pass_deps};
    + singleton-variable lint ([W020]) — {!Pass_lints};
    + with a query: sip validity and head bindability on the adorned rule
      set ([E003], [E030], [E031]) — {!Pass_sip}; the Section 10 safety
      report ([W050], [W051]); and the rewrite-invariant linter
      ([E040]-[E047]) over each requested strategy — {!Rewrite_lint}.

    Exit-worthiness is the severity: a program is rejected iff some
    diagnostic is an error; warnings flag constructs that evaluate but
    deserve attention. *)

open Datalog
module C := Magic_core
module Diagnostic = Diagnostic
module Ctx = Ctx
module Pass_safety = Pass_safety
module Pass_deps = Pass_deps
module Pass_lints = Pass_lints
module Pass_sip = Pass_sip
module Rewrite_lint = Rewrite_lint

val all_rewritings : C.Rewrite.rewriting list
(** GMS, GSMS, GC, GSC. *)

val check :
  ?srcmap:Parser.source_map ->
  ?sip:C.Sip.strategy ->
  ?rewritings:C.Rewrite.rewriting list ->
  ?query:Atom.t ->
  Program.t ->
  Diagnostic.t list
(** Run the full pipeline on a parsed program (facts still inline, as
    returned by {!Datalog.Parser.parse_program}); sorted by source
    position.  [rewritings] defaults to all four strategies; pass [[]] to
    skip the rewrite linter. *)

val check_text :
  ?sip:C.Sip.strategy ->
  ?rewritings:C.Rewrite.rewriting list ->
  string ->
  Diagnostic.t list
(** Parse and {!check} a source text; lexical and syntax errors are
    reported as [E100] diagnostics instead of exceptions. *)

val preflight :
  ?srcmap:Parser.source_map -> ?query:Atom.t -> Program.t -> Diagnostic.t list
(** The error-level program checks an evaluation should run first: every
    returned diagnostic is an {!Diagnostic.Error} that would make the
    engine raise or loop.  Used by the CLI before [eval]/[explain]/[compare]. *)

val codes : (string * Diagnostic.severity * string) list
(** The stable diagnostic code table (code, severity, one-line summary). *)
