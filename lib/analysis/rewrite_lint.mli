(** Invariant linter for rewritten programs (codes E040-E047).

    [check] inspects the output of any of the four strategies — GMS, GSMS,
    GC, GSC — and reports violations of the structural guarantees the
    construction promises: consistent arities, defined-or-seeded generated
    predicates, role-dictated arities, well-formed counting index terms,
    ground magic/cnt seeds, preserved range restriction and
    stratifiability, and magic guards on modified rules.  A correct
    rewriting produces an empty list; the test suite runs it over every
    strategy and the random program corpus.

    Note: the Section 8 semijoin optimization deliberately projects
    argument columns away; run the linter on unoptimized rewritings. *)

val check : Magic_core.Rewritten.t -> Diagnostic.t list
