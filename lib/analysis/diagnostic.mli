(** Diagnostics: a stable code, a severity, a message, a source span and
    optional related notes.  Rendering is caret-style:

    {v
    examples/bad.dl:3:1: error[E010]: negation through recursion: ...
    3 | win(X) :- move(X, Y), not win(Y).
      |                       ^^^^^^^^^^
      = note: cycle: win -> win
    v} *)

open Datalog

type severity = Error | Warning

type t = {
  code : string;  (** stable, e.g. ["E001"]; see {!Analysis.codes} *)
  severity : severity;
  message : string;
  span : Loc.t;  (** {!Datalog.Loc.dummy} when the diagnostic has no source *)
  notes : (string * Loc.t) list;
}

val error : ?span:Loc.t -> ?notes:(string * Loc.t) list -> code:string -> string -> t
val warning : ?span:Loc.t -> ?notes:(string * Loc.t) list -> code:string -> string -> t

val with_span : Loc.t -> t -> t
(** Attach a span if the diagnostic does not already carry one. *)

val add_note : ?span:Loc.t -> string -> t -> t

val is_error : t -> bool
val errors : t list -> t list
val has_errors : t list -> bool
val count : severity -> t list -> int
val severity_string : severity -> string

val compare : t -> t -> int
(** Source position, then code, then message; unlocated diagnostics sort
    last. *)

val sort : t list -> t list

val render : ?src:string -> ?file:string -> Format.formatter -> t -> unit
(** Full rendering; with [src] the source line is excerpted with a caret
    underline, with [file] locations are prefixed by the file name. *)

val pp : t Fmt.t
(** {!render} without source or file. *)

val summary : t list Fmt.t
(** ["2 errors, 1 warning"] or ["no diagnostics"]. *)
