(* Cardinality analysis: per-predicate (card, per-column distinct)
   estimates propagated through rule bodies with join/projection
   arithmetic, fixpointed per Tarjan SCC with an extrapolating widening.

   The numbers are deliberate over-estimates compared against each
   other by Pass_cost — they are never used as hard limits, so the
   arithmetic favours simplicity and monotonicity over tightness. *)

open Datalog

type stat = { card : float; distinct : float array }

let default_universe = 100.
let default_card = 1000.
let max_rounds = 12
let huge = 1e18

type t = {
  stats : (Symbol.t, stat) Hashtbl.t;
  universe : float;
  measured : bool;
  widened : Symbol.t list;
  derived : Symbol.Set.t;
  probes : float;
  rounds : float;
}

let universe t = t.universe
let measured t = t.measured
let widened t = t.widened

let zero_stat arity = { card = 0.; distinct = Array.make (max arity 0) 1. }

let stat t sym =
  match Hashtbl.find_opt t.stats sym with
  | Some s -> s
  | None -> zero_stat sym.Symbol.arity

let total_derived t =
  Symbol.Set.fold (fun sym acc -> acc +. (stat t sym).card) t.derived 0.

let est_rounds t = t.rounds
let est_probes t = t.probes

(* ---- extensional statistics ---- *)

let stat_of_facts arity facts =
  let n = List.length facts in
  let cols = Array.init (max arity 0) (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun (a : Atom.t) ->
      List.iteri
        (fun i arg -> if i < arity then Hashtbl.replace cols.(i) arg ())
        a.Atom.args)
    facts;
  {
    card = float_of_int n;
    distinct = Array.map (fun h -> float_of_int (max 1 (Hashtbl.length h))) cols;
  }

let universe_of_db db =
  let h = Hashtbl.create 256 in
  List.iter
    (fun (a : Atom.t) -> List.iter (fun arg -> Hashtbl.replace h arg ()) a.Atom.args)
    (Engine.Database.all_facts db);
  float_of_int (max 2 (Hashtbl.length h))

(* ---- per-rule estimation ---- *)

let clamp1 x = Float.max 1. x

(* distinct-value estimate for a term under the variable environment *)
let term_distinct var_d universe (t : Term.t) =
  if Term.is_ground t then 1.
  else
    List.fold_left
      (fun acc v ->
        acc
        *. (match Hashtbl.find_opt var_d v with Some d -> d | None -> universe))
      1. (Term.vars t)

(* Walk the body left to right keeping a frontier (number of partial
   derivations alive) and a per-variable distinct estimate.  A positive
   literal over stat s with a set of already-bound columns matches
   [s.card / prod (distinct of bound columns)] tuples per frontier row;
   negation and comparisons filter at selectivity 1/2; a binding
   equality transfers distincts without shrinking the frontier.
   Returns (probe sum, output estimate, per-head-column contribution). *)
let estimate_rule lookup universe (r : Rule.t) =
  let var_d : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let bound v = Hashtbl.mem var_d v in
  let term_bound t = List.for_all bound (Term.vars t) in
  let bind_term d (t : Term.t) =
    List.iter
      (fun v ->
        let d' =
          match Hashtbl.find_opt var_d v with
          | Some e -> Float.min e d
          | None -> d
        in
        Hashtbl.replace var_d v (clamp1 d'))
      (Term.vars t)
  in
  let frontier = ref 1. in
  let probes = ref 0. in
  List.iter
    (fun lit ->
      let a = Rule.atom_of_literal lit in
      probes := Float.min huge (!probes +. !frontier);
      if Atom.is_builtin a then begin
        match (a.Atom.pred, a.Atom.args) with
        | "=", [ x; y ] when term_bound x && not (term_bound y) ->
          bind_term (term_distinct var_d universe x) y
        | "=", [ x; y ] when term_bound y && not (term_bound x) ->
          bind_term (term_distinct var_d universe y) x
        | _ -> frontier := !frontier *. 0.5
      end
      else begin
        let s = lookup (Atom.symbol a) in
        match lit with
        | Rule.Neg _ -> frontier := !frontier *. 0.5
        | Rule.Pos _ ->
          let sel = ref 1. in
          List.iteri
            (fun i arg ->
              if i < Array.length s.distinct && term_bound arg then
                sel :=
                  !sel /. clamp1 (Float.min s.distinct.(i) (clamp1 s.card)))
            a.Atom.args;
          frontier := Float.min huge (!frontier *. (s.card *. !sel));
          List.iteri
            (fun i arg ->
              let d =
                if i < Array.length s.distinct then s.distinct.(i) else universe
              in
              bind_term d arg)
            a.Atom.args
      end)
    r.Rule.body;
  let head_contrib =
    List.map
      (fun arg -> term_distinct var_d universe arg)
      r.Rule.head.Atom.args
  in
  let head_cap = List.fold_left (fun a b -> Float.min huge (a *. b)) 1. head_contrib in
  let out = Float.max 0. (Float.min !frontier head_cap) in
  (!probes, out, Array.of_list head_contrib)

(* ---- the analysis ---- *)

let analyze ?db ?defaults ?universe:universe_override
    ?(col_caps = fun _ -> None) ?rounds_bound program =
  let defaults =
    match defaults with Some d -> d | None -> db = None
  in
  let measured = not defaults in
  let universe =
    match universe_override with
    | Some u -> clamp1 u
    | None -> (
      match db with
      | Some d when Engine.Database.total d > 0 -> universe_of_db d
      | _ -> default_universe)
  in
  let rounds_bound =
    clamp1 (match rounds_bound with Some r -> r | None -> universe)
  in
  let derived = Program.derived program in
  let symbols =
    let acc = ref (Program.predicates program) in
    (match db with
    | Some d ->
      List.iter (fun s -> acc := Symbol.Set.add s !acc) (Engine.Database.symbols d)
    | None -> ());
    !acc
  in
  (* caps: per-column distinct bound, defaulting to the universe *)
  let caps_of sym =
    match col_caps sym with
    | Some a -> Array.map clamp1 a
    | None -> Array.make (max sym.Symbol.arity 0) universe
  in
  let card_cap_of sym =
    Array.fold_left (fun a c -> Float.min huge (a *. c)) 1. (caps_of sym)
  in
  (* initial stats: extensional relations measured from the database
     (symbolic defaults when absent), derived predicates start from any
     seed facts the database holds for them *)
  let init : (Symbol.t, stat) Hashtbl.t = Hashtbl.create 32 in
  let stats : (Symbol.t, stat) Hashtbl.t = Hashtbl.create 32 in
  Symbol.Set.iter
    (fun sym ->
      let facts =
        match db with Some d -> Engine.Database.facts d sym | None -> []
      in
      let s =
        if facts <> [] then stat_of_facts sym.Symbol.arity facts
        else if (not (Symbol.Set.mem sym derived)) && defaults then
          {
            card = default_card;
            distinct =
              Array.make (max sym.Symbol.arity 0)
                (Float.min universe default_card);
          }
        else zero_stat sym.Symbol.arity
      in
      Hashtbl.replace init sym s;
      Hashtbl.replace stats sym s)
    symbols;
  let lookup sym =
    match Hashtbl.find_opt stats sym with
    | Some s -> s
    | None -> zero_stat sym.Symbol.arity
  in
  (* one synchronous recomputation of a predicate from its rules *)
  let recompute sym =
    let init_s =
      match Hashtbl.find_opt init sym with
      | Some s -> s
      | None -> zero_stat sym.Symbol.arity
    in
    let caps = caps_of sym in
    let out = ref init_s.card in
    let cols = Array.copy init_s.distinct in
    List.iter
      (fun (_, r) ->
        let _, rule_out, contrib = estimate_rule lookup universe r in
        out := Float.min huge (!out +. rule_out);
        Array.iteri
          (fun i c ->
            if i < Array.length contrib then
              cols.(i) <- Float.min huge (c +. contrib.(i)))
          cols)
      (Program.rules_for program sym);
    let cols = Array.mapi (fun i c -> Float.min caps.(i) (clamp1 c)) cols in
    let card =
      Float.min !out
        (Array.fold_left (fun a c -> Float.min huge (a *. c)) 1. cols)
    in
    let cols = Array.map (fun c -> Float.min c (clamp1 card)) cols in
    { card; distinct = cols }
  in
  let widened = ref [] in
  let rounds = ref 1. in
  let process_scc scc =
    let members = List.filter (fun s -> Symbol.Set.mem s derived) scc in
    if members <> [] then begin
      let recursive =
        match members with
        | [ s ] ->
          List.exists
            (fun (_, r) ->
              List.exists
                (fun a -> Symbol.equal (Atom.symbol a) s)
                (Rule.body_atoms r))
            (Program.rules_for program s)
        | _ -> true
      in
      if not recursive then
        List.iter (fun s -> Hashtbl.replace stats s (recompute s)) members
      else begin
        (* One recompute round advances each member from the others'
           previous stats, so a derivation hop through an s-member SCC
           (magic -> supplementary -> magic) costs s rounds; budget the
           fixpoint for the full round horizon at that rate and widen
           only past it — the rounds are pure float arithmetic, and
           truncating early systematically undershoots the predicates
           later in the chain. *)
        let budget =
          int_of_float
            (Float.min 4096.
               (Float.max (float_of_int max_rounds)
                  ((rounds_bound *. float_of_int (List.length members)) +. 4.)))
        in
        (* A member is settled when its round delta is gone, or small
           relative to its size AND shrinking geometrically (at most
           half the previous round's delta).  The trend condition is
           what distinguishes a converging fixpoint from steady linear
           growth: a chain's cardinality grows by a constant amount per
           round, so once it reaches ~100x the per-round step a purely
           relative test mistakes it for stable and freezes the
           estimate orders of magnitude short of the horizon — such
           SCCs must instead run to the budget and take the
           extrapolating widening below. *)
        let settled ~prev_card ~prev_delta ~delta =
          delta <= 1e-9
          || (delta <= 0.01 *. clamp1 prev_card && delta <= 0.5 *. prev_delta)
        in
        let step () =
          let next = List.map (fun s -> (s, recompute s)) members in
          List.iter (fun (s, st) -> Hashtbl.replace stats s st) next
        in
        let rec go k prev_deltas =
          let prev = List.map (fun s -> (lookup s).card) members in
          step ();
          let deltas =
            List.map2
              (fun s p -> Float.abs ((lookup s).card -. p))
              members prev
          in
          let stable =
            List.for_all2
              (fun (prev_card, delta) prev_delta ->
                settled ~prev_card ~prev_delta ~delta)
              (List.combine prev deltas) prev_deltas
          in
          if stable then rounds := Float.max !rounds (float_of_int k)
          else if k >= budget then begin
            (* extrapolating widening: project the last round's growth
               linearly out to the round horizon, under the column caps *)
            List.iter2
              (fun s p ->
                let now = lookup s in
                let delta = Float.max 0. (now.card -. p) in
                let projected =
                  Float.min (card_cap_of s)
                    (now.card +. (delta *. Float.max 0. (rounds_bound -. float_of_int k)))
                in
                let caps = caps_of s in
                let distinct =
                  Array.mapi
                    (fun i _ -> Float.min caps.(i) (clamp1 projected))
                    now.distinct
                in
                Hashtbl.replace stats s { card = projected; distinct })
              members prev;
            widened := members @ !widened;
            rounds := Float.max !rounds rounds_bound
          end
          else go (k + 1) deltas
        in
        go 1 (List.map (fun _ -> Float.infinity) members)
      end
    end
  in
  List.iter process_scc (Program.sccs program);
  (* total probe estimate under the final stats *)
  let probes =
    List.fold_left
      (fun acc r ->
        let p, _, _ = estimate_rule lookup universe r in
        Float.min huge (acc +. p))
      0. (Program.rules program)
  in
  {
    stats;
    universe;
    measured;
    widened = List.sort_uniq Symbol.compare !widened;
    derived;
    probes;
    rounds = !rounds;
  }

let diagnostics t =
  let w061 =
    if t.measured then []
    else
      [
        Diagnostic.warning ~code:"W061"
          (Fmt.str
             "no extensional statistics: cardinality estimates use symbolic \
              defaults (%.0f facts per base relation, %.0f-constant domain)"
             default_card t.universe);
      ]
  in
  let w060 =
    match t.widened with
    | [] -> []
    | syms ->
      [
        Diagnostic.warning ~code:"W060"
          (Fmt.str
             "recursive cardinalities for %s did not stabilize within the \
              fixpoint budget; estimates were widened to the %.0f-round \
              horizon"
             (String.concat ", "
                (List.map (fun (s : Symbol.t) -> s.Symbol.name) syms))
             t.rounds);
      ]
  in
  w061 @ w060

(* ---- data-shape analysis ---- *)

type shape = {
  acyclic : bool;
  longest : float;
  total_paths : float;
  saturated : bool;
  reachable : float;
}

let path_saturation = 1e6

let graph_shape ~edges ~roots =
  let adj : (Term.t, Term.t list) Hashtbl.t = Hashtbl.create 64 in
  let nodes : (Term.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let indeg : (Term.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace nodes u ();
      Hashtbl.replace nodes v ();
      Hashtbl.replace adj u
        (v :: Option.value ~default:[] (Hashtbl.find_opt adj u));
      Hashtbl.replace indeg v (1 + Option.value ~default:0 (Hashtbl.find_opt indeg v)))
    edges;
  let succs u = Option.value ~default:[] (Hashtbl.find_opt adj u) in
  let all_nodes = Hashtbl.fold (fun n () acc -> n :: acc) nodes [] in
  let roots = List.filter (Hashtbl.mem nodes) roots in
  let roots =
    if roots <> [] then roots
    else
      match List.filter (fun n -> not (Hashtbl.mem indeg n)) all_nodes with
      | [] -> all_nodes
      | sources -> sources
  in
  if all_nodes = [] then
    { acyclic = true; longest = 0.; total_paths = 1.; saturated = false;
      reachable = 0. }
  else begin
    (* iterative DFS from the roots: cycle detection + reachable set *)
    let color : (Term.t, int) Hashtbl.t = Hashtbl.create 64 in
    let cyclic = ref false in
    List.iter
      (fun root ->
        if not (Hashtbl.mem color root) then begin
          let stack = Stack.create () in
          Hashtbl.replace color root 1;
          Stack.push (root, ref (succs root)) stack;
          while not (Stack.is_empty stack) do
            let u, rest = Stack.top stack in
            match !rest with
            | [] ->
              Hashtbl.replace color u 2;
              ignore (Stack.pop stack)
            | v :: tl -> (
              rest := tl;
              match Hashtbl.find_opt color v with
              | Some 1 -> cyclic := true
              | Some _ -> ()
              | None ->
                Hashtbl.replace color v 1;
                Stack.push (v, ref (succs v)) stack)
          done
        end)
      roots;
    if !cyclic then
      { acyclic = false; longest = huge; total_paths = huge; saturated = true;
        reachable = float_of_int (Hashtbl.length color) }
    else begin
      let reachable = Hashtbl.mem color in
      (* Kahn over the reachable subgraph: longest path + path counts *)
      let indeg_r : (Term.t, int) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.iter
        (fun u _ ->
          List.iter
            (fun v ->
              Hashtbl.replace indeg_r v
                (1 + Option.value ~default:0 (Hashtbl.find_opt indeg_r v)))
            (succs u))
        color;
      let depth : (Term.t, float) Hashtbl.t = Hashtbl.create 64 in
      let pc : (Term.t, float) Hashtbl.t = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.replace pc r 1.) roots;
      let queue = Queue.create () in
      Hashtbl.iter
        (fun u _ ->
          if Option.value ~default:0 (Hashtbl.find_opt indeg_r u) = 0 then
            Queue.add u queue)
        color;
      let longest = ref 0. in
      let saturated = ref false in
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let du = Option.value ~default:0. (Hashtbl.find_opt depth u) in
        let pu = Option.value ~default:0. (Hashtbl.find_opt pc u) in
        longest := Float.max !longest du;
        List.iter
          (fun v ->
            if reachable v then begin
              Hashtbl.replace depth v
                (Float.max (du +. 1.)
                   (Option.value ~default:0. (Hashtbl.find_opt depth v)));
              let p =
                pu +. Option.value ~default:0. (Hashtbl.find_opt pc v)
              in
              let p =
                if p >= path_saturation then (
                  saturated := true;
                  path_saturation)
                else p
              in
              Hashtbl.replace pc v p;
              let d = Option.value ~default:0 (Hashtbl.find_opt indeg_r v) - 1 in
              Hashtbl.replace indeg_r v d;
              if d = 0 then Queue.add v queue
            end)
          (succs u)
      done;
      let total =
        Hashtbl.fold (fun _ p acc -> Float.min 1e9 (acc +. p)) pc 0.
      in
      {
        acyclic = true;
        longest = !longest;
        total_paths = Float.max 1. total;
        saturated = !saturated || total >= path_saturation;
        reachable = float_of_int (Hashtbl.length color);
      }
    end
  end
