(** Rule safety / range restriction.

    - [E001] (error): a variable of a negated literal occurs in no positive
      body literal — negation-as-failure cannot enumerate it.
    - [E002] (error): a comparison builtin has a variable no positive
      literal or equality chain can ever bind.
    - [W001] (warning): a head variable occurs in no positive body literal;
      plain bottom-up evaluation is unsafe, but the paper's rewritings can
      repair the rule when the query binds the corresponding argument (the
      adorned-level check is {!Pass_sip.check_head_bindable}). *)

open Datalog

val bindable_vars : Rule.t -> Set.Make(String).t
(** Variables a left-to-right evaluation of the positive body can bind:
    variables of non-builtin positive literals, closed under equality. *)

val run : Ctx.t -> Diagnostic.t list
