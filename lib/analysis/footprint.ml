(* Predicate-level dependency footprints.

   The footprint of a predicate is the set of predicates its stored
   contents can transitively depend on — every EDB or IDB relation
   whose change could possibly change the predicate's tuples.  It is
   the invalidation granule of the serving layer's answer cache: a
   transaction whose touched set is disjoint from a cached query's
   footprint cannot have changed that query's answers.

   Footprints are computed over the *maintained* program (the magic
   rewriting when the session holds one), so under dynamic magic sets
   the footprint of an answer predicate includes its magic and
   supplementary predicates and, through them, the EDB relations of
   the cone — recursion through magic is just reachability here.

   [neg_free] additionally records whether any dependency *inside* the
   footprint is negated.  When it is, an insertion into a lower
   predicate can retract a higher tuple, so cached answers can only be
   repaired by appending maintained inserts when the footprint is
   negation-free. *)

open Datalog

type t = {
  preds : Symbol.Set.t;  (* reachable set, the root included *)
  neg_free : bool;
}

type index = {
  graph : Depgraph.t;
  neg_edges : (Symbol.t * Symbol.t) list;  (* (src, dst) of negated deps *)
  memo : t Symbol.Tbl.t;  (* not thread-safe: callers serialize *)
}

let index program =
  let graph = Depgraph.of_rules (Program.rules program) in
  let neg_edges =
    List.filter_map
      (fun (e : Depgraph.edge) ->
        if e.Depgraph.negated then Some (e.Depgraph.src, e.Depgraph.dst)
        else None)
      (Depgraph.edges graph)
  in
  { graph; neg_edges; memo = Symbol.Tbl.create 16 }

let of_pred idx sym =
  match Symbol.Tbl.find_opt idx.memo sym with
  | Some fp -> fp
  | None ->
    let preds = Depgraph.reachable idx.graph [ sym ] in
    (* a negated edge inside the footprint: its source is reachable
       from the root, so the root reads through that negation *)
    let neg_free =
      not
        (List.exists
           (fun (src, _) -> Symbol.Set.mem src preds)
           idx.neg_edges)
    in
    let fp = { preds; neg_free } in
    Symbol.Tbl.add idx.memo sym fp;
    fp

let preds fp = fp.preds
let neg_free fp = fp.neg_free
let mem fp sym = Symbol.Set.mem sym fp.preds

let intersects fp set =
  if Symbol.Set.cardinal set <= Symbol.Set.cardinal fp.preds then
    Symbol.Set.exists (fun s -> Symbol.Set.mem s fp.preds) set
  else Symbol.Set.exists (fun s -> Symbol.Set.mem s set) fp.preds
