(** Abstract-interpretation cardinality bounds per predicate.

    Each predicate gets a [stat]: an estimated fact count plus a
    per-column distinct-value estimate.  Extensional statistics come
    from a {!Engine.Database.t} when one is available; otherwise
    symbolic defaults stand in.  Rule bodies are evaluated with
    textbook join/projection arithmetic (a bound column keeps
    [1/distinct] of the relation), and recursive SCCs (Tarjan output,
    callees first) run a bounded fixpoint with an extrapolating
    widening: after [k] unstable rounds the last round's growth is
    projected linearly out to [rounds_bound] and capped by the
    predicate's column caps.  The results deliberately over-estimate:
    they are compared against each other by {!Pass_cost}, never used as
    hard limits. *)

open Datalog

type stat = {
  card : float;  (** estimated number of facts *)
  distinct : float array;  (** per-column distinct-value estimates *)
}

type t

val analyze :
  ?db:Engine.Database.t ->
  ?defaults:bool ->
  ?universe:float ->
  ?col_caps:(Symbol.t -> float array option) ->
  ?rounds_bound:float ->
  Program.t ->
  t
(** [db] supplies extensional statistics (and initial stats for derived
    predicates seeded with facts, e.g. magic seeds).  [defaults]
    (default: [db = None]) makes empty-or-missing base relations fall
    back to symbolic sizes instead of zero.  [universe] overrides the
    distinct-constant count (measured from [db] by default).
    [col_caps] supplies per-column distinct caps for generated
    predicates whose columns range over something other than the data
    constants (counting indices); unmentioned predicates cap every
    column at the universe.  [rounds_bound] (default: the universe) is
    the round horizon the widening extrapolates to. *)

val universe_of_db : Engine.Database.t -> float
(** Distinct constants across all facts (at least 2). *)

val universe : t -> float
val measured : t -> bool
(** Whether extensional statistics were available. *)

val widened : t -> Symbol.t list
(** Predicates whose recursive fixpoint did not stabilize and were
    extrapolated; empty means every estimate converged. *)

val stat : t -> Symbol.t -> stat
(** Zero stat for unknown predicates. *)

val total_derived : t -> float
(** Sum of estimated cardinalities over the program's derived predicates. *)

val est_probes : t -> float
(** Estimated join probes for one evaluation to fixpoint: the sum over
    rules of the frontier sizes entering each body literal, under the
    final stats. *)

val est_rounds : t -> float
(** Estimated semi-naive rounds: the deepest recursive SCC's round
    count (widened SCCs report [rounds_bound]). *)

val diagnostics : t -> Diagnostic.t list
(** [W060] when some recursion was widened, [W061] when no extensional
    statistics were available. *)

(** {1 Data-shape analysis}

    Used by {!Pass_cost} to decide whether the counting strategies'
    numeric derivation indices stay representable: the indices encode
    the derivation path, so they are bounded exactly when the guard
    descent graph reachable from the seeds is acyclic, shallow enough
    for the [~2^depth] encoding, and without path-count explosion. *)

type shape = {
  acyclic : bool;
  longest : float;  (** longest path (edge count) from the roots; meaningful only when acyclic *)
  total_paths : float;  (** total root-to-node path count, saturating *)
  saturated : bool;  (** the path count hit the saturation bound *)
  reachable : float;  (** nodes reachable from the roots (cyclic included) *)
}

val graph_shape : edges:(Term.t * Term.t) list -> roots:Term.t list -> shape
(** Shape of the subgraph reachable from [roots] (roots absent from the
    graph are ignored; when none remain, in-degree-0 nodes stand in,
    and failing that every node). *)
